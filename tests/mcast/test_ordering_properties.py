"""Property-based tests on orderings and chain construction."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mcast import chain_for
from repro.network import host

BASE = [host(i) for i in range(16)]


@settings(max_examples=60)
@given(
    src_index=st.integers(min_value=0, max_value=15),
    dest_seed=st.integers(min_value=0, max_value=100_000),
    n_dests=st.integers(min_value=1, max_value=15),
)
def test_chain_for_invariants(src_index, dest_seed, n_dests):
    source = BASE[src_index]
    pool = [h for h in BASE if h != source]
    rng = random.Random(dest_seed)
    dests = rng.sample(pool, min(n_dests, len(pool)))
    chain = chain_for(source, dests, BASE)

    # Source first; exact membership; no duplicates.
    assert chain[0] == source
    assert sorted(chain[1:]) == sorted(dests)
    assert len(set(chain)) == len(chain)

    # Rotated order: positions relative to the source strictly increase.
    def rel(h):
        return (BASE.index(h) - src_index) % len(BASE)

    rels = [rel(h) for h in chain[1:]]
    assert rels == sorted(rels)
    assert all(r > 0 for r in rels)


@settings(max_examples=30)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_all_orderings_are_permutations(seed):
    from repro.mcast import cco_ordering, poc_ordering, random_ordering
    from repro.network import UpDownRouter, build_irregular_network

    topo = build_irregular_network(
        n_switches=4, switch_ports=6, hosts_per_switch=2, seed=seed
    )
    router = UpDownRouter(topo)
    for ordering in (
        cco_ordering(topo, router),
        poc_ordering(topo, router),
        random_ordering(topo, seed=seed),
    ):
        assert sorted(ordering) == sorted(topo.hosts)


def test_time_limit_guard():
    """The new time_limit parameter catches too-tight limits cleanly."""
    import pytest

    from repro.core import build_kbinomial_tree
    from repro.mcast import MulticastSimulator, cco_ordering, chain_for
    from repro.network import UpDownRouter, build_irregular_network

    topo = build_irregular_network(seed=3)
    router = UpDownRouter(topo)
    base = cco_ordering(topo, router)
    chain = chain_for(base[0], base[1:17], base)
    tree = build_kbinomial_tree(chain, 2)
    sim = MulticastSimulator(topo, router)
    # Generous limit: completes normally.
    result = sim.run(tree, 4, time_limit=10_000.0)
    assert result.latency > 0
    # Absurdly tight limit: clean, informative failure.
    with pytest.raises(RuntimeError, match="time_limit"):
        sim.run(tree, 4, time_limit=5.0)
