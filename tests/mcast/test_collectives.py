"""Collective operations over FPFS NIs (extension of the paper's §7)."""

from __future__ import annotations

import pytest

from repro.core import build_kbinomial_tree
from repro.mcast import (
    MulticastSimulator,
    broadcast,
    cco_ordering,
    chain_for,
    gather,
    multiple_multicast,
    scatter,
)


@pytest.fixture(scope="module")
def setup(request):
    topology = request.getfixturevalue("paper_topology")
    router = request.getfixturevalue("paper_router")
    ordering = request.getfixturevalue("paper_ordering")
    return topology, router, ordering, MulticastSimulator(topology, router)


class TestRunMany:
    def test_results_in_input_order(self, setup):
        _, _, ordering, sim = setup
        chain_a = chain_for(ordering[0], ordering[1:5], ordering)
        chain_b = chain_for(ordering[20], ordering[21:25], ordering)
        results = sim.run_many(
            [(build_kbinomial_tree(chain_a, 2), 2), (build_kbinomial_tree(chain_b, 2), 4)]
        )
        assert results[0].message.num_packets == 2
        assert results[1].message.num_packets == 4

    def test_empty_rejected(self, setup):
        *_, sim = setup
        with pytest.raises(ValueError):
            sim.run_many([])

    def test_concurrent_multicasts_slower_than_isolated(self, setup):
        # Shared channels mean each group is no faster than alone.
        _, _, ordering, sim = setup
        chain_a = chain_for(ordering[0], ordering[1:17], ordering)
        chain_b = chain_for(ordering[17], ordering[18:34], ordering)
        tree_a = build_kbinomial_tree(chain_a, 2)
        tree_b = build_kbinomial_tree(chain_b, 2)
        alone_a = sim.run(tree_a, 8).latency
        alone_b = sim.run(tree_b, 8).latency
        together = sim.run_many([(tree_a, 8), (tree_b, 8)])
        assert together[0].latency >= alone_a - 1e-9
        assert together[1].latency >= alone_b - 1e-9


class TestBroadcast:
    def test_reaches_every_host(self, setup):
        topology, _, ordering, sim = setup
        result = broadcast(sim, ordering[0], ordering, 4)
        assert len(result.destination_completion) == len(topology.hosts) - 1

    def test_explicit_k_override(self, setup):
        _, _, ordering, sim = setup
        r1 = broadcast(sim, ordering[0], ordering, 8, k=1)
        r2 = broadcast(sim, ordering[0], ordering, 8, k=2)
        assert r2.latency < r1.latency  # linear chain is far worse at n=64


class TestScatter:
    def test_each_destination_gets_own_message(self, setup):
        _, _, ordering, sim = setup
        chain = chain_for(ordering[0], ordering[1:9], ordering)
        tree = build_kbinomial_tree(chain, 2)
        result = scatter(sim, tree, 3)
        assert len(result.parts) == 8
        leaves = {part.message.destinations[-1] for part in result.parts}
        assert leaves == set(tree.destinations())
        for part in result.parts:
            assert part.message.num_packets == 3
            # Tree strategy: intermediate relays appear as receivers of
            # the path message; the final destination is the path leaf.
            assert part.message.destinations[-1] in tree.destinations()

    def test_strategies_both_complete(self, setup):
        _, _, ordering, sim = setup
        chain = chain_for(ordering[0], ordering[1:9], ordering)
        tree = build_kbinomial_tree(chain, 2)
        t = scatter(sim, tree, 2, strategy="tree")
        d = scatter(sim, tree, 2, strategy="direct")
        assert t.makespan > 0 and d.makespan > 0

    def test_unknown_strategy_rejected(self, setup):
        _, _, ordering, sim = setup
        chain = chain_for(ordering[0], ordering[1:5], ordering)
        tree = build_kbinomial_tree(chain, 2)
        with pytest.raises(ValueError):
            scatter(sim, tree, 2, strategy="bogus")

    def test_makespan_is_max_of_parts(self, setup):
        _, _, ordering, sim = setup
        chain = chain_for(ordering[0], ordering[1:7], ordering)
        tree = build_kbinomial_tree(chain, 2)
        result = scatter(sim, tree, 2)
        assert result.makespan == max(p.latency for p in result.parts)


class TestGather:
    def test_root_receives_from_every_source(self, setup):
        _, _, ordering, sim = setup
        result = gather(sim, ordering[0], ordering[1:9], 2)
        assert len(result.parts) == 8
        for part in result.parts:
            assert part.message.destinations == (ordering[0],)

    def test_empty_sources_rejected(self, setup):
        _, _, ordering, sim = setup
        with pytest.raises(ValueError):
            gather(sim, ordering[0], [], 2)


class TestMultipleMulticast:
    def test_disjoint_groups_all_complete(self, setup):
        _, _, ordering, sim = setup
        groups = [
            (ordering[0], ordering[1:9]),
            (ordering[16], ordering[17:25]),
            (ordering[32], ordering[33:41]),
        ]
        result = multiple_multicast(sim, groups, ordering, 4)
        assert len(result.parts) == 3
        assert result.makespan == max(p.latency for p in result.parts)

    def test_empty_groups_rejected(self, setup):
        _, _, ordering, sim = setup
        with pytest.raises(ValueError):
            multiple_multicast(sim, [], ordering, 2)

    def test_contention_raises_makespan_vs_isolated(self, setup):
        # Overlapping groups must not finish faster than isolated runs.
        _, _, ordering, sim = setup
        groups = [
            (ordering[0], ordering[1:33]),
            (ordering[1], ordering[33:63]),
        ]
        combined = multiple_multicast(sim, groups, ordering, 8)
        isolated = max(
            multiple_multicast(sim, [g], ordering, 8).makespan for g in groups
        )
        assert combined.makespan >= isolated - 1e-9
