"""Reliable multicast over lossy channels (extension, [12])."""

from __future__ import annotations

import pytest

from repro.core import build_kbinomial_tree
from repro.mcast import ReliableMulticastSimulator, chain_for
from repro.nic import LossyChannelPool, Nack
from repro.sim import Environment


@pytest.fixture(scope="module")
def scenario(paper_topology, paper_router, paper_ordering):
    chain = chain_for(paper_ordering[0], list(paper_ordering[1:17]), paper_ordering)
    tree = build_kbinomial_tree(chain, 2)
    return paper_topology, paper_router, tree


class TestLossyChannelPool:
    def test_loss_rate_validation(self):
        env = Environment()
        with pytest.raises(ValueError):
            LossyChannelPool(env, 1.0)
        with pytest.raises(ValueError):
            LossyChannelPool(env, -0.1)

    def test_zero_rate_never_drops(self):
        pool = LossyChannelPool(Environment(), 0.0)
        assert not any(pool.should_drop(object()) for _ in range(500))

    def test_nacks_never_dropped(self):
        pool = LossyChannelPool(Environment(), 0.9, seed=1)
        nack = Nack(1, (0,), ("host", 0))
        assert not any(pool.should_drop(nack) for _ in range(200))

    def test_drop_counting_and_determinism(self):
        a = LossyChannelPool(Environment(), 0.3, seed=7)
        b = LossyChannelPool(Environment(), 0.3, seed=7)
        draws_a = [a.should_drop(object()) for _ in range(300)]
        draws_b = [b.should_drop(object()) for _ in range(300)]
        assert draws_a == draws_b
        assert a.dropped == sum(draws_a)
        assert 40 < a.dropped < 140  # ~90 expected


class TestReliableSimulator:
    def test_loss_rate_validation(self, scenario):
        topology, router, _ = scenario
        with pytest.raises(ValueError):
            ReliableMulticastSimulator(topology, router, loss_rate=1.5)

    def test_zero_loss_matches_plain_fpfs_shape(self, scenario):
        topology, router, tree = scenario
        from repro.mcast import MulticastSimulator

        reliable = ReliableMulticastSimulator(topology, router, loss_rate=0.0)
        plain = MulticastSimulator(topology, router)
        r = reliable.run(tree, 8)
        p = plain.run(tree, 8)
        assert reliable.last_dropped == 0
        assert r.latency == pytest.approx(p.latency)

    @pytest.mark.parametrize("rate", [0.02, 0.08, 0.2])
    def test_all_packets_delivered_despite_loss(self, scenario, rate):
        topology, router, tree = scenario
        sim = ReliableMulticastSimulator(topology, router, loss_rate=rate, loss_seed=5)
        result = sim.run(tree, 8)  # _collect raises if anything is missing
        assert sim.last_dropped > 0
        assert len(result.destination_completion) == 16

    def test_latency_degrades_gracefully_with_loss(self, scenario):
        topology, router, tree = scenario
        latencies = []
        for rate in (0.0, 0.05, 0.2):
            sim = ReliableMulticastSimulator(topology, router, loss_rate=rate, loss_seed=5)
            latencies.append(sim.run(tree, 8).latency)
        assert latencies == sorted(latencies)
        # Even 20% loss stays within ~4x of lossless.
        assert latencies[-1] < 4 * latencies[0]

    def test_deterministic_per_seed(self, scenario):
        topology, router, tree = scenario
        runs = [
            ReliableMulticastSimulator(topology, router, loss_rate=0.1, loss_seed=9)
            .run(tree, 8)
            .latency
            for _ in range(2)
        ]
        assert runs[0] == runs[1]

    def test_recovery_is_parent_local(self, scenario):
        # Retransmissions come from tree parents, not the source host:
        # the trace shows 'retransmit' events at intermediate NIs.
        topology, router, tree = scenario
        sim = ReliableMulticastSimulator(
            topology, router, loss_rate=0.15, loss_seed=11, collect_trace=True
        )
        sim.run(tree, 8)
        retransmitters = {r["host"] for r in sim.last_trace.select("retransmit")}
        interior = {n for n in tree.nodes() if tree.fanout(n) and n != tree.root}
        assert retransmitters & interior, "expected some parent-local recovery"

    def test_tail_loss_recovered_by_timer(self, scenario):
        # Force a loss pattern, run enough packets that some final
        # packets drop; completion still achieved (timer-driven NACKs).
        topology, router, tree = scenario
        sim = ReliableMulticastSimulator(topology, router, loss_rate=0.25, loss_seed=13)
        result = sim.run(tree, 4)
        assert result.completion_time > 0
