"""Per-host NI speed factors (straggler study, extension)."""

from __future__ import annotations

import pytest

from repro.core import build_kbinomial_tree
from repro.mcast import MulticastSimulator, chain_for
from repro.nic import FPFSInterface


@pytest.fixture
def scenario(paper_topology, paper_router, paper_ordering):
    chain = chain_for(paper_ordering[0], list(paper_ordering[1:17]), paper_ordering)
    tree = build_kbinomial_tree(chain, 2)
    return paper_topology, paper_router, tree


def test_invalid_factor_rejected(scenario):
    topology, router, tree = scenario
    with pytest.raises(ValueError):
        MulticastSimulator(topology, router, host_speed={tree.root: 0.0})


def test_uniform_machine_unchanged_by_empty_map(scenario):
    topology, router, tree = scenario
    base = MulticastSimulator(topology, router).run(tree, 4).latency
    mapped = MulticastSimulator(topology, router, host_speed={}).run(tree, 4).latency
    assert base == mapped


def test_slow_internal_node_hurts(scenario):
    topology, router, tree = scenario
    internal = next(n for n in tree.nodes() if tree.fanout(n) and n != tree.root)
    base = MulticastSimulator(topology, router).run(tree, 8).latency
    slowed = MulticastSimulator(
        topology, router, host_speed={internal: 4.0}
    ).run(tree, 8).latency
    assert slowed > base


def test_slow_leaf_hurts_less_than_slow_internal(scenario):
    topology, router, tree = scenario
    internal = next(n for n in tree.nodes() if tree.fanout(n) and n != tree.root)
    leaf = next(n for n in tree.nodes() if tree.fanout(n) == 0)
    slow_internal = MulticastSimulator(
        topology, router, host_speed={internal: 4.0}
    ).run(tree, 8).latency
    slow_leaf = MulticastSimulator(
        topology, router, host_speed={leaf: 4.0}
    ).run(tree, 8).latency
    assert slow_leaf <= slow_internal


def test_fast_nis_help(scenario):
    topology, router, tree = scenario
    base = MulticastSimulator(topology, router).run(tree, 8).latency
    turbo = MulticastSimulator(
        topology, router, host_speed={h: 0.5 for h in topology.hosts}
    ).run(tree, 8).latency
    assert turbo < base


def test_unlisted_hosts_run_at_nominal_speed(scenario):
    topology, router, tree = scenario
    sim = MulticastSimulator(topology, router, host_speed={tree.root: 2.0})
    other = next(h for h in topology.hosts if h != tree.root)
    assert sim._params_for(other) is sim.params
    assert sim._params_for(tree.root).t_ns == sim.params.t_ns * 2
