"""Golden regression pins: exact values frozen from the validated build.

Unlike the shape assertions elsewhere, these pin *specific floats*.
Deliberate model changes will trip them — that is the point: any edit
that silently moves the numbers the reproduction was validated on must
be noticed and the EXPERIMENTS.md record re-baselined.
"""

from __future__ import annotations

import pytest

from repro import Machine
from repro.analysis import ExperimentConfig
from repro.analysis.experiments import binomial, kbinomial_optimal, sweep_latency

CFG = ExperimentConfig(n_topologies=1, n_dest_sets=2, seed=1234)


def test_golden_sweep_kbinomial():
    assert sweep_latency(31, 8, kbinomial_optimal, CFG) == pytest.approx(122.2)


def test_golden_sweep_binomial():
    assert sweep_latency(31, 8, binomial, CFG) == pytest.approx(201.3)


def test_golden_machine_multicast():
    machine = Machine.irregular(seed=0)
    result = machine.multicast(machine.hosts[0], machine.hosts[1:16], 512)
    assert result.latency == pytest.approx(111.6)
    assert result.packet_completion[0] == pytest.approx(42.1)
    assert result.packet_completion[1] == pytest.approx(49.9)


def test_golden_analytics():
    # These are exact integers; no approx needed.
    from repro.core import coverage, fpfs_total_steps, build_kbinomial_tree, optimal_k

    assert coverage(8, 2) == 88
    assert optimal_k(64, 8) == 2
    assert fpfs_total_steps(build_kbinomial_tree(list(range(64)), 2), 8) == 22
