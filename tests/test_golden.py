"""Golden regression pins: exact values frozen from the validated build.

Unlike the shape assertions elsewhere, these pin *specific floats*.
Deliberate model changes will trip them — that is the point: any edit
that silently moves the numbers the reproduction was validated on must
be noticed and the EXPERIMENTS.md record re-baselined.
"""

from __future__ import annotations

import pytest

from repro import Machine
from repro.analysis import ExperimentConfig
from repro.analysis.experiments import binomial, kbinomial_optimal, sweep_latency

CFG = ExperimentConfig(n_topologies=1, n_dest_sets=2, seed=1234)


def test_golden_sweep_kbinomial():
    assert sweep_latency(31, 8, kbinomial_optimal, CFG) == pytest.approx(122.2)


def test_golden_sweep_binomial():
    assert sweep_latency(31, 8, binomial, CFG) == pytest.approx(201.3)


def test_golden_machine_multicast():
    machine = Machine.irregular(seed=0)
    result = machine.multicast(machine.hosts[0], machine.hosts[1:16], 512)
    assert result.latency == pytest.approx(111.6)
    assert result.packet_completion[0] == pytest.approx(42.1)
    assert result.packet_completion[1] == pytest.approx(49.9)


def test_golden_analytics():
    # These are exact integers; no approx needed.
    from repro.core import coverage, fpfs_total_steps, build_kbinomial_tree, optimal_k

    assert coverage(8, 2) == 88
    assert optimal_k(64, 8) == 2
    assert fpfs_total_steps(build_kbinomial_tree(list(range(64)), 2), 8) == 22


# ---------------------------------------------------------------------------
# Surface-path goldens: the vectorized engine must keep producing the
# exact series the figures and the §5.1 table were validated on.
# ---------------------------------------------------------------------------

#: Fig. 12(a): optimal k vs message length (m = 1..35) per dest count.
GOLDEN_FIG12A_63 = [6, 3] + [2] * 33
GOLDEN_FIG12A_15 = [4] + [2] * 10 + [1] * 24
#: Fig. 12(b): optimal k vs system size (n = 2..64) per packet count.
GOLDEN_FIG12B_M1 = [1] + [2] * 2 + [3] * 4 + [4] * 8 + [5] * 16 + [6] * 32
GOLDEN_FIG12B_M8 = [1] * 10 + [2] * 53
#: §5.1 NI table runs: (first m of the run, k) breakpoints per n.
GOLDEN_SEC51_RUNS = {
    8: [(1, 3), (3, 2), (5, 1)],
    16: [(1, 4), (2, 2), (12, 1)],
    32: [(1, 5), (2, 2), (27, 1)],
    64: [(1, 6), (2, 3), (3, 2)],
}


@pytest.fixture(scope="module")
def fig12_surface():
    from repro.core import AnalyticSurface

    return AnalyticSurface.build(64, 35)


def test_golden_fig12a_surface_path(fig12_surface):
    from repro.analysis import fig12a_optimal_k

    series = fig12a_optimal_k(surface=fig12_surface)
    assert series[63] == GOLDEN_FIG12A_63
    assert series[15] == GOLDEN_FIG12A_15


def test_golden_fig12b_surface_path(fig12_surface):
    from repro.analysis import fig12b_optimal_k

    series = fig12b_optimal_k(surface=fig12_surface)
    assert series[1] == GOLDEN_FIG12B_M1
    assert series[8] == GOLDEN_FIG12B_M8


def test_golden_sec51_table_surface_path(fig12_surface):
    from repro.core import OptimalKTable

    table = OptimalKTable(n_max=64, m_max=32, chooser=fig12_surface.optimal_k)
    for n, runs in GOLDEN_SEC51_RUNS.items():
        assert table.runs_for(n) == runs, n
    assert table.memory_entries == 199
