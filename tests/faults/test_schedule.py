"""FaultSchedule data model: validation, canonical order, serialization."""

from __future__ import annotations

import pytest

from repro.core import build_kbinomial_tree
from repro.faults import (
    FAULT_KINDS,
    FaultEvent,
    FaultSchedule,
    poisson_schedule,
    targeted_subtree_schedule,
    worst_case_root_child,
)
from repro.network import host


class TestEventValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultEvent(1.0, "cosmic_ray", host(1))

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match="time must be >= 0"):
            FaultEvent(-1.0, "node_crash", host(1))

    def test_stall_needs_duration(self):
        with pytest.raises(ValueError, match="positive duration"):
            FaultEvent(1.0, "ni_stall", host(1))

    def test_slowdown_needs_factor_above_one(self):
        with pytest.raises(ValueError, match="factor > 1"):
            FaultEvent(1.0, "ni_slowdown", host(1), factor=1.0)

    def test_buffer_exhaustion_needs_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            FaultEvent(1.0, "buffer_exhaustion", host(1))

    def test_degrade_needs_delay(self):
        with pytest.raises(ValueError, match="delay_us"):
            FaultEvent(1.0, "link_degrade", ("a", "b"))

    def test_crash_is_permanent(self):
        with pytest.raises(ValueError, match="permanent"):
            FaultEvent(1.0, "node_crash", host(1), duration=5.0)

    def test_every_kind_is_constructible(self):
        builders = {
            "node_crash": dict(),
            "ni_stall": dict(duration=5.0),
            "ni_slowdown": dict(factor=2.0, duration=5.0),
            "link_drop": dict(),
            "link_degrade": dict(delay_us=1.0),
            "buffer_exhaustion": dict(capacity=2),
        }
        assert set(builders) == set(FAULT_KINDS)
        for kind, extra in builders.items():
            event = FaultEvent(3.0, kind, host(1), **extra)
            assert event.kind == kind


class TestScheduleOrdering:
    def test_events_sorted_by_time(self):
        late = FaultEvent(9.0, "node_crash", host(1))
        early = FaultEvent(2.0, "ni_stall", host(2), duration=1.0)
        schedule = FaultSchedule((late, early))
        assert [e.time for e in schedule] == [2.0, 9.0]

    def test_insertion_order_is_irrelevant(self):
        a = FaultEvent(5.0, "node_crash", host(1))
        b = FaultEvent(5.0, "link_drop", host(2))
        c = FaultEvent(1.0, "ni_stall", host(3), duration=2.0)
        assert FaultSchedule((a, b, c)) == FaultSchedule((c, b, a))
        assert FaultSchedule((a, b, c)).to_json() == FaultSchedule((b, a, c)).to_json()

    def test_len_bool_iter(self):
        empty = FaultSchedule()
        assert len(empty) == 0 and not empty
        one = FaultSchedule((FaultEvent(1.0, "node_crash", host(1)),))
        assert len(one) == 1 and bool(one)
        assert [e.kind for e in one] == ["node_crash"]

    def test_until_keeps_early_events(self):
        schedule = FaultSchedule(
            (
                FaultEvent(1.0, "node_crash", host(1)),
                FaultEvent(10.0, "node_crash", host(2)),
            )
        )
        assert [e.target for e in schedule.until(5.0)] == [host(1)]

    def test_node_targets_skips_link_faults(self):
        schedule = FaultSchedule(
            (
                FaultEvent(1.0, "node_crash", host(1)),
                FaultEvent(2.0, "link_drop", ("a", "b")),
            )
        )
        assert schedule.node_targets() == frozenset({host(1)})


class TestSerialization:
    def test_json_round_trip_preserves_tuple_targets(self):
        schedule = FaultSchedule(
            (
                FaultEvent(1.5, "node_crash", host(3)),
                FaultEvent(2.5, "link_degrade", (host(1), ("sw", 0)), delay_us=4.0),
                FaultEvent(3.5, "ni_slowdown", host(2), factor=3.0, duration=10.0),
            )
        )
        restored = FaultSchedule.from_json(schedule.to_json())
        assert restored == schedule
        # Targets come back as the same hashable tuples, not lists.
        assert restored.events[0].target == host(3)
        assert restored.events[1].target == (host(1), ("sw", 0))

    def test_canonical_json_is_stable(self):
        schedule = FaultSchedule((FaultEvent(1.0, "node_crash", host(1)),))
        assert schedule.to_json() == schedule.to_json()
        assert '"version":1' in schedule.to_json()

    def test_unknown_event_field_rejected(self):
        with pytest.raises(ValueError, match="unknown FaultEvent fields"):
            FaultEvent.from_dict({"time": 1.0, "kind": "node_crash", "target": 1, "blast": 9})

    def test_unknown_version_rejected(self):
        with pytest.raises(ValueError, match="version"):
            FaultSchedule.from_dict({"version": 2, "events": []})


class TestGenerators:
    HOSTS = [host(i) for i in range(16)]

    def test_poisson_is_deterministic_per_seed(self):
        kwargs = dict(rate=0.1, horizon=100.0, seed=7)
        assert poisson_schedule(self.HOSTS, **kwargs) == poisson_schedule(self.HOSTS, **kwargs)
        other = poisson_schedule(self.HOSTS, rate=0.1, horizon=100.0, seed=8)
        assert other != poisson_schedule(self.HOSTS, **kwargs)

    def test_poisson_respects_horizon_and_exclusions(self):
        schedule = poisson_schedule(
            self.HOSTS, rate=0.2, horizon=50.0, seed=3, exclude=(host(0),)
        )
        assert all(e.time <= 50.0 for e in schedule)
        assert host(0) not in {e.target for e in schedule}

    def test_poisson_validates_arguments(self):
        with pytest.raises(ValueError, match="rate"):
            poisson_schedule(self.HOSTS, rate=0.0, horizon=10.0, seed=0)
        with pytest.raises(ValueError, match="horizon"):
            poisson_schedule(self.HOSTS, rate=1.0, horizon=0.0, seed=0)
        with pytest.raises(ValueError, match="unknown fault kind"):
            poisson_schedule(self.HOSTS, rate=1.0, horizon=10.0, seed=0, kinds=("nope",))
        with pytest.raises(ValueError, match="no eligible"):
            poisson_schedule(self.HOSTS[:1], rate=1.0, horizon=10.0, seed=0, exclude=(host(0),))

    def test_targeted_subtree_kills_an_internal_node(self):
        tree = build_kbinomial_tree(self.HOSTS, 2)
        schedule = targeted_subtree_schedule(tree, at=20.0, seed=5)
        assert len(schedule) == 1
        event = schedule.events[0]
        assert event.kind == "node_crash" and event.time == 20.0
        assert event.target != tree.root
        assert tree.children(event.target), "target must be a forwarding node"
        assert schedule == targeted_subtree_schedule(tree, at=20.0, seed=5)

    def test_worst_case_hits_the_first_root_child(self):
        tree = build_kbinomial_tree(self.HOSTS, 2)
        schedule = worst_case_root_child(tree, at=15.0)
        assert schedule.events[0].target == tree.children(tree.root)[0]

    def test_worst_case_requires_children(self):
        from repro.core.trees import MulticastTree

        with pytest.raises(ValueError, match="no children"):
            worst_case_root_child(MulticastTree(host(0)), at=1.0)
