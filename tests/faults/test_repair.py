"""Tree repair: dead-subtree detection and re-planning over survivors.

The load-bearing property (the ISSUE's acceptance contract): the
repaired tree over the ``n - f`` survivors is *exactly* the tree a
from-scratch Theorem-3 plan would build — same re-optimized ``k*``,
same Fig. 11 edges — and its height satisfies Lemma 1 coverage.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import build_kbinomial_tree, coverage, optimal_k, steps_needed
from repro.core.optimal import predicted_steps
from repro.core.trees import MulticastTree
from repro.faults import repair_plan, surviving_chain, unreachable_set


def _tree_edges(tree: MulticastTree) -> list:
    return list(tree.edges())


class TestUnreachableSet:
    def _tree(self):
        # 0 -> 1 -> {2, 3}; 0 -> 4
        tree = MulticastTree(0)
        tree.add_child(0, 1)
        tree.add_child(1, 2)
        tree.add_child(1, 3)
        tree.add_child(0, 4)
        return tree

    def test_internal_failure_takes_the_subtree(self):
        assert unreachable_set(self._tree(), [1]) == frozenset({1, 2, 3})

    def test_leaf_failure_takes_only_the_leaf(self):
        assert unreachable_set(self._tree(), [4]) == frozenset({4})

    def test_multiple_failures_union(self):
        assert unreachable_set(self._tree(), [2, 4]) == frozenset({2, 4})

    def test_failed_source_is_unrepairable(self):
        with pytest.raises(ValueError, match="source failed"):
            unreachable_set(self._tree(), [0])

    def test_no_failures_means_no_losses(self):
        assert unreachable_set(self._tree(), []) == frozenset()


class TestSurvivingChain:
    def test_order_preserved(self):
        assert surviving_chain([0, 1, 2, 3, 4], {1, 3}) == [0, 2, 4]

    def test_no_unreachable_is_identity(self):
        assert surviving_chain([0, 1, 2], ()) == [0, 1, 2]


class TestRepairPlanValidation:
    def test_chain_must_start_at_the_source(self):
        tree = build_kbinomial_tree([0, 1, 2, 3], 2)
        with pytest.raises(ValueError, match="chain\\[0\\]"):
            repair_plan(tree, [1, 0, 2, 3], [2], m=2)

    def test_chain_must_cover_the_tree(self):
        tree = build_kbinomial_tree([0, 1, 2, 3], 2)
        with pytest.raises(ValueError, match="missing tree nodes"):
            repair_plan(tree, [0, 1, 2], [1], m=2)

    def test_m_must_be_positive(self):
        tree = build_kbinomial_tree([0, 1, 2, 3], 2)
        with pytest.raises(ValueError, match="m must be"):
            repair_plan(tree, [0, 1, 2, 3], [1], m=0)


class TestRepairPlan:
    def test_everyone_dead_leaves_a_root_only_plan(self):
        chain = list(range(6))
        tree = build_kbinomial_tree(chain, 2)
        plan = repair_plan(tree, chain, tree.children(tree.root), m=4)
        assert plan.survivors == (0,)
        assert set(plan.lost) == set(chain[1:])
        assert plan.total_steps == 0 and plan.t1 == 0
        assert list(plan.tree.nodes()) == [0]
        assert plan.coverage == 0.0

    def test_step_overhead_compares_to_the_original_plan(self):
        chain = list(range(16))
        m = 4
        tree = build_kbinomial_tree(chain, optimal_k(16, m))
        plan = repair_plan(tree, chain, [chain[-1]], m=m)
        assert plan.original_steps == predicted_steps(16, optimal_k(16, m), m)
        assert plan.step_overhead == plan.total_steps - plan.original_steps

    @settings(max_examples=60, deadline=None)
    @given(
        n=st.integers(min_value=4, max_value=48),
        m=st.integers(min_value=1, max_value=8),
        data=st.data(),
    )
    def test_repair_matches_a_from_scratch_plan(self, n, m, data):
        """Repair over n-f survivors == cold plan over n-f nodes (Lemma 1 tight)."""
        chain = list(range(n))
        tree = build_kbinomial_tree(chain, optimal_k(n, m))
        failed = data.draw(
            st.sets(st.sampled_from(chain[1:]), min_size=1, max_size=n - 2),
            label="failed",
        )

        plan = repair_plan(tree, chain, failed, m=m)

        unreachable = unreachable_set(tree, failed)
        survivors = [node for node in chain if node not in unreachable]
        assert list(plan.survivors) == survivors
        assert set(plan.lost) == set(unreachable)

        n_new = len(survivors)
        if n_new < 2:
            assert plan.total_steps == 0
            return

        # The re-optimized k and the rebuilt tree are exactly what a
        # from-scratch plan over the survivors produces.
        k_star = optimal_k(n_new, m)
        assert plan.k == k_star
        scratch = build_kbinomial_tree(survivors, k_star)
        assert _tree_edges(plan.tree) == _tree_edges(scratch)
        assert sorted(map(repr, plan.tree.nodes())) == sorted(map(repr, survivors))

        # Lemma 1: T1 steps cover all n-f survivors, T1 - 1 do not.
        assert plan.t1 == steps_needed(n_new, k_star)
        assert coverage(plan.t1, k_star) >= n_new
        if plan.t1 > 0:
            assert coverage(plan.t1 - 1, k_star) < n_new
        assert plan.tree.height <= plan.t1
        assert plan.total_steps == plan.t1 + (m - 1) * k_star
