"""Chaos harness: replay determinism across workers, smoke contract, CLI."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.faults import chaos_smoke, chaos_sweep, records_json, survival_table
from repro.faults.chaos import SCENARIOS, chaos_point


class TestDeterminism:
    def test_records_identical_across_worker_counts(self):
        """The acceptance criterion: workers=1 and workers=4 byte-identical."""
        serial = records_json(chaos_sweep(seeds=(0,), dests=15, m=4, workers=1))
        parallel = records_json(chaos_sweep(seeds=(0,), dests=15, m=4, workers=4))
        assert serial == parallel

    def test_point_is_a_pure_function_of_its_arguments(self):
        a = chaos_point("root_child", seed=0, dests=15, m=4)
        b = chaos_point("root_child", seed=0, dests=15, m=4)
        assert a == b

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            chaos_point("meteor", seed=0, dests=15, m=4)


class TestSmoke:
    @pytest.fixture(scope="class")
    def records(self):
        return chaos_smoke()

    def test_covers_every_scenario(self, records):
        assert [r["scenario"] for r in records] == list(SCENARIOS)

    def test_baseline_row_is_clean(self, records):
        base = next(r for r in records if r["scenario"] == "baseline")
        assert base["coverage"] == 1.0
        assert base["delivery_ratio"] == 1.0
        assert sum(base["dropped"].values()) == 0
        assert base["repair"] is None

    def test_worst_case_crash_loses_coverage_and_gets_a_repair(self, records):
        worst = next(r for r in records if r["scenario"] == "root_child")
        assert worst["coverage"] < 1.0
        repair = worst["repair"]
        assert repair is not None
        assert repair["survivors"] + repair["lost"] == worst["dests"] + 1
        assert repair["survivors"] >= 2 and repair["total_steps"] > 0

    def test_records_are_json_safe(self, records):
        assert json.loads(records_json(records)) == records

    def test_survival_table_renders_every_row(self, records):
        table = survival_table(records)
        for scenario in SCENARIOS:
            assert scenario in table
        assert "chaos survival" in table


class TestCLI:
    def test_chaos_smoke_subcommand(self, capsys):
        assert main(["chaos", "--smoke"]) == 0
        out = capsys.readouterr().out
        assert "chaos survival" in out
        assert "chaos smoke OK" in out

    def test_chaos_writes_records_with_manifest(self, capsys, tmp_path):
        out_path = tmp_path / "chaos.json"
        code = main(
            ["chaos", "--runs", "1", "--dests", "7", "--bytes", "128", "--out", str(out_path)]
        )
        assert code == 0
        payload = json.loads(out_path.read_text())
        assert payload["version"] == 1
        assert "manifest" in payload
        assert [r["scenario"] for r in payload["records"]] == list(SCENARIOS)
