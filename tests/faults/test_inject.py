"""Fault injection against the DES: every kind, drop accounting, determinism."""

from __future__ import annotations

import pytest

from repro.core import build_kbinomial_tree
from repro.faults import (
    FaultEvent,
    FaultSchedule,
    FaultyMulticastSimulator,
    worst_case_root_child,
)
from repro.mcast import MulticastSimulator
from repro.network import host

#: Strike time (µs): past fast_params' t_s=10 source hand-off, so the
#: message is mid-flight when the fault lands.
AT = 12.0


def _chain(topology, n=8):
    return sorted(topology.hosts, key=lambda h: h[1])[:n]


@pytest.fixture
def testbed(small_topology, small_router, fast_params):
    chain = _chain(small_topology)
    # k=3 is the full binomial at n=8: the root has three children, so
    # killing the largest subtree still leaves survivors to assert on
    # (at k<=2 the first child would own the entire destination set).
    tree = build_kbinomial_tree(chain, 3)
    baseline = MulticastSimulator(small_topology, small_router, params=fast_params).run(tree, 4)

    def sim(schedule=None):
        return FaultyMulticastSimulator(
            small_topology, small_router, schedule=schedule, params=fast_params
        )

    return sim, tree, chain, baseline


class TestEmptySchedule:
    def test_results_identical_to_base_simulator(self, testbed):
        sim, tree, _, baseline = testbed
        result = sim().run(tree, 4)
        assert result.latency == baseline.latency
        assert result.packet_completion == baseline.packet_completion
        assert result.destination_completion == baseline.destination_completion
        assert result.peak_buffers == baseline.peak_buffers

    def test_no_gates_installed(self, testbed):
        sim, tree, _, _ = testbed
        simulator = sim()
        simulator.run(tree, 4)
        assert simulator.last_injector is not None
        assert simulator.last_injector.gates == {}

    def test_degraded_view_reports_full_coverage(self, testbed):
        sim, tree, _, baseline = testbed
        degraded = sim().run_degraded(tree, 4)
        assert degraded.coverage == 1.0
        assert degraded.delivery_ratio == 1.0
        assert degraded.completion_time == baseline.completion_time
        assert degraded.dropped == {"sends": 0, "recvs": 0, "links": 0, "buffer": 0}


class TestNodeCrash:
    def test_crash_starves_exactly_the_subtree(self, testbed):
        sim, tree, _, _ = testbed
        victim = tree.children(tree.root)[0]
        simulator = sim(worst_case_root_child(tree, at=AT))
        result = simulator.run_degraded(tree, 4)

        expected_lost = {victim}
        stack = [victim]
        while stack:
            for child in tree.children(stack.pop()):
                expected_lost.add(child)
                stack.append(child)
        assert set(result.lost_destinations) == expected_lost
        assert 0.0 < result.coverage < 1.0
        # Survivors still hold the complete message.
        for dest in result.complete_destinations:
            assert result.delivered[dest] == tuple(range(4))
        assert sum(simulator.last_injector.dropped().values()) > 0
        assert simulator.last_injector.crashed_nodes() == {victim}

    def test_crash_before_start_loses_the_whole_subtree_cleanly(self, testbed):
        sim, tree, _, _ = testbed
        victim = tree.children(tree.root)[0]
        result = sim(FaultSchedule((FaultEvent(0.0, "node_crash", victim),))).run_degraded(
            tree, 4
        )
        assert victim in result.lost_destinations
        assert result.delivered[victim] == ()

    def test_unknown_target_raises(self, testbed):
        sim, tree, _, _ = testbed
        bad = FaultSchedule((FaultEvent(0.0, "node_crash", host(999)),))
        with pytest.raises(ValueError, match="not a host"):
            sim(bad).run_degraded(tree, 4)


class TestDelayFaults:
    def test_stall_delays_but_loses_nothing(self, testbed):
        sim, tree, _, baseline = testbed
        victim = tree.children(tree.root)[0]
        stall = FaultSchedule((FaultEvent(AT, "ni_stall", victim, duration=40.0),))
        simulator = sim(stall)
        result = simulator.run(tree, 4)  # strict collector: nothing may be lost
        assert result.completion_time > baseline.completion_time
        assert sum(simulator.last_injector.dropped().values()) == 0

    def test_slowdown_heals_after_its_window(self, testbed):
        sim, tree, _, baseline = testbed
        victim = tree.children(tree.root)[0]

        def completion(duration):
            schedule = FaultSchedule(
                (FaultEvent(AT, "ni_slowdown", victim, factor=8.0, duration=duration),)
            )
            return sim(schedule).run(tree, 4).completion_time

        transient = completion(4.0)
        permanent = completion(None)
        assert baseline.completion_time < transient < permanent

    def test_link_degrade_adds_delay_without_loss(self, testbed):
        sim, tree, chain, baseline = testbed
        degrade = FaultSchedule(
            (FaultEvent(0.0, "link_degrade", chain[-1], delay_us=7.0),)
        )
        simulator = sim(degrade)
        result = simulator.run(tree, 4)
        assert result.completion_time > baseline.completion_time
        assert sum(simulator.last_injector.dropped().values()) == 0


class TestLossFaults:
    def test_endpoint_link_drop_loses_the_leaf(self, testbed):
        sim, tree, chain, _ = testbed
        leaf = chain[-1]
        assert not tree.children(leaf)
        simulator = sim(FaultSchedule((FaultEvent(0.0, "link_drop", leaf),)))
        result = simulator.run_degraded(tree, 4)
        assert leaf in result.lost_destinations
        assert simulator.last_injector.dropped()["links"] > 0

    def test_transient_link_drop_heals(self, testbed):
        sim, tree, chain, _ = testbed
        leaf = chain[-1]
        # The outage closes before the multicast starts moving packets,
        # so nothing is lost despite a real drop window.
        blip = FaultSchedule((FaultEvent(0.0, "link_drop", leaf, duration=5.0),))
        result = sim(blip).run_degraded(tree, 4)
        assert result.coverage == 1.0

    def test_buffer_exhaustion_starves_the_forwarder(self, testbed):
        sim, tree, _, _ = testbed
        forwarder = tree.children(tree.root)[0]
        assert tree.children(forwarder)
        simulator = sim(
            FaultSchedule((FaultEvent(0.0, "buffer_exhaustion", forwarder, capacity=0),))
        )
        result = simulator.run_degraded(tree, 4)
        assert forwarder in result.lost_destinations
        assert simulator.last_injector.dropped()["buffer"] > 0

    def test_leaves_ignore_buffer_caps(self, testbed):
        sim, tree, chain, _ = testbed
        leaf = chain[-1]
        assert not tree.children(leaf)
        # A pure receiver never needs a forwarding slot, so a zero cap
        # at a leaf must not drop anything (§2.5: the cap is on the
        # forwarding pool, not reception).
        result = sim(
            FaultSchedule((FaultEvent(0.0, "buffer_exhaustion", leaf, capacity=0),))
        ).run_degraded(tree, 4)
        assert result.coverage == 1.0


class TestDeterminism:
    def test_same_schedule_same_outcome(self, testbed):
        sim, tree, _, _ = testbed
        schedule = worst_case_root_child(tree, at=AT)
        first = sim(schedule).run_degraded(tree, 4)
        second = sim(schedule).run_degraded(tree, 4)
        assert first.delivered == second.delivered
        assert first.destination_completion == second.destination_completion
        assert first.dropped == second.dropped

    def test_applied_log_records_strike_times(self, testbed):
        sim, tree, _, _ = testbed
        simulator = sim(worst_case_root_child(tree, at=AT))
        simulator.run_degraded(tree, 4)
        applied = simulator.last_injector.applied
        assert len(applied) == 1
        when, event = applied[0]
        assert when == AT and event.kind == "node_crash"
