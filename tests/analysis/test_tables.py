"""Table rendering."""

from __future__ import annotations

from repro.analysis import render_comparison, render_series, render_table


def test_render_table_alignment():
    out = render_table(["a", "long_header"], [[1, 2.5], [30, 4.0]])
    lines = out.splitlines()
    assert "a" in lines[0] and "long_header" in lines[0]
    assert "-" in lines[1]
    assert "30" in lines[2] or "30" in lines[3]


def test_render_table_title():
    out = render_table(["x"], [[1]], title="My Title")
    assert out.splitlines()[0] == "My Title"


def test_float_formatting():
    out = render_table(["v"], [[3.14159]])
    assert "3.14" in out and "3.14159" not in out


def test_render_series_columns():
    out = render_series("m", [1, 2], {"bin": [10.0, 20.0], "kbin": [5.0, 8.0]})
    assert "bin" in out and "kbin" in out
    assert "20.00" in out


def test_render_comparison_includes_ratio():
    out = render_comparison("m", [1, 2], [10.0, 20.0], [5.0, 10.0])
    assert "ratio" in out
    assert "2.00" in out


def test_render_comparison_zero_contender():
    out = render_comparison("m", [1], [10.0], [0.0])
    assert "inf" in out
