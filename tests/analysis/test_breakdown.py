"""Latency breakdown decomposition."""

from __future__ import annotations

import pytest

from repro.analysis import run_breakdown
from repro.core import build_binomial_tree, build_kbinomial_tree
from repro.mcast import MulticastSimulator, chain_for


@pytest.fixture(scope="module")
def setup(paper_topology, paper_router, paper_ordering):
    sim = MulticastSimulator(paper_topology, paper_router)
    chain = chain_for(paper_ordering[0], list(paper_ordering[1:17]), paper_ordering)
    return sim, chain


def test_components_nonnegative_and_consistent(setup):
    sim, chain = setup
    tree = build_kbinomial_tree(chain, 2)
    b = run_breakdown(sim, tree, 4)
    assert b.sends == sum(1 for _ in tree.edges()) * 4
    assert b.host_startup == sim.params.t_s
    assert b.host_receive == sim.params.t_r
    assert b.injection == pytest.approx(b.sends * sim.params.t_ns)
    assert b.receive == pytest.approx(b.sends * sim.params.t_nr)
    assert b.network > 0 and b.blocking >= 0
    assert b.total_work > 0


def test_shares_sum_to_one(setup):
    sim, chain = setup
    tree = build_kbinomial_tree(chain, 2)
    shares = run_breakdown(sim, tree, 8).shares()
    assert sum(shares.values()) == pytest.approx(1.0)
    assert all(0 <= v <= 1 for v in shares.values())


def test_injection_dominates_network_under_paper_params(setup):
    # t_ns = 3.0 µs vs per-hop 0.2 + wire 0.4: NI overhead is the
    # dominant per-send cost — the premise of the step model.
    sim, chain = setup
    tree = build_kbinomial_tree(chain, 2)
    b = run_breakdown(sim, tree, 8)
    assert b.injection > b.network


def test_blocking_stays_marginal_on_cco_chains(setup):
    # The CCO ordering keeps both trees' channel blocking a small
    # fraction of their total network occupancy.  (The k-binomial's
    # deeper pipeline keeps more packets in flight, so it blocks
    # slightly *more* in aggregate than the source-serialized binomial
    # — while still finishing far sooner.)
    sim, chain = setup
    m = 16
    kb = run_breakdown(sim, build_kbinomial_tree(chain, 2), m)
    bb = run_breakdown(sim, build_binomial_tree(chain), m)
    # Same number of sends (same edges x packets).
    assert kb.sends == bb.sends
    assert kb.blocking < 0.2 * kb.network
    assert bb.blocking < 0.2 * bb.network
    # The latency ordering is unaffected by the blocking difference.
    assert kb.result.latency < bb.result.latency


def test_caller_simulator_unchanged(setup):
    sim, chain = setup
    tree = build_kbinomial_tree(chain, 2)
    run_breakdown(sim, tree, 2)
    assert sim.collect_trace is False
    assert sim.last_trace is None
