"""CSV export."""

from __future__ import annotations

import csv

import pytest

from repro.analysis import series_to_csv, write_csv


def test_write_csv_roundtrip(tmp_path):
    path = write_csv(tmp_path / "out.csv", ["a", "b"], [[1, 2.5], [3, 4.0]])
    rows = list(csv.reader(path.open()))
    assert rows == [["a", "b"], ["1", "2.5"], ["3", "4.0"]]


def test_series_to_csv(tmp_path):
    path = series_to_csv(
        tmp_path / "fig.csv",
        "m",
        [1, 2],
        {"binomial": [10.0, 20.0], "kbinomial": [5.0, 8.0]},
    )
    rows = list(csv.reader(path.open()))
    assert rows[0] == ["m", "binomial", "kbinomial"]
    assert rows[1] == ["1", "10.0", "5.0"]


def test_series_length_mismatch_rejected(tmp_path):
    with pytest.raises(ValueError):
        series_to_csv(tmp_path / "x.csv", "m", [1, 2], {"a": [1.0]})


def test_cli_csv_option(tmp_path, capsys):
    from repro.cli import main

    out_path = tmp_path / "fig12a.csv"
    main(["fig12a", "--max-m", "4", "--csv", str(out_path)])
    captured = capsys.readouterr().out
    assert "wrote" in captured
    rows = list(csv.reader(out_path.open()))
    assert rows[0][0] == "m"
    assert len(rows) == 5  # header + 4 m values
