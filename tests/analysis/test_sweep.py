"""Generic sweep utility."""

from __future__ import annotations

import pytest

from repro.analysis import sweep, sweep_table


def test_cross_product_order():
    points = sweep(lambda a, b: a * 10 + b, {"a": [1, 2], "b": [3, 4]})
    assert [(p["a"], p["b"], p.value) for p in points] == [
        (1, 3, 13),
        (1, 4, 14),
        (2, 3, 23),
        (2, 4, 24),
    ]


def test_single_grid():
    points = sweep(lambda x: x**2, {"x": [1, 2, 3]})
    assert [p.value for p in points] == [1, 4, 9]


def test_progress_callback_sees_every_point():
    seen = []
    sweep(lambda x: x, {"x": range(4)}, progress=lambda params: seen.append(params["x"]))
    assert seen == [0, 1, 2, 3]


def test_sweep_table_shape():
    points = sweep(lambda n, m: n + m, {"n": [1, 2], "m": [5]})
    headers, rows = sweep_table(points, value_name="steps")
    assert headers == ["n", "m", "steps"]
    assert rows == [[1, 5, 6], [2, 5, 7]]


def test_sweep_table_empty_rejected():
    with pytest.raises(ValueError):
        sweep_table([])


def test_sweep_with_real_measurement():
    from repro.core import optimal_k

    points = sweep(optimal_k, {"n": [16, 64], "m": [1, 8]})
    values = {(p["n"], p["m"]): p.value for p in points}
    assert values[(64, 1)] == 6 and values[(64, 8)] == 2
