"""Generic sweep utility and the parallel run_sweep engine."""

from __future__ import annotations

import pickle

import pytest

from repro.analysis import run_sweep, sweep, sweep_table
from repro.analysis.sweep import SweepStore


def picklable_measure(n, m):
    """Module-level (hence picklable) measure for the parallel tests."""
    return (n * 1000 + m, float(n) / m)


def test_cross_product_order():
    points = sweep(lambda a, b: a * 10 + b, {"a": [1, 2], "b": [3, 4]})
    assert [(p["a"], p["b"], p.value) for p in points] == [
        (1, 3, 13),
        (1, 4, 14),
        (2, 3, 23),
        (2, 4, 24),
    ]


def test_single_grid():
    points = sweep(lambda x: x**2, {"x": [1, 2, 3]})
    assert [p.value for p in points] == [1, 4, 9]


def test_progress_callback_sees_every_point():
    seen = []
    sweep(lambda x: x, {"x": range(4)}, progress=lambda params: seen.append(params["x"]))
    assert seen == [0, 1, 2, 3]


def test_sweep_table_shape():
    points = sweep(lambda n, m: n + m, {"n": [1, 2], "m": [5]})
    headers, rows = sweep_table(points, value_name="steps")
    assert headers == ["n", "m", "steps"]
    assert rows == [[1, 5, 6], [2, 5, 7]]


def test_sweep_table_empty_rejected():
    with pytest.raises(ValueError):
        sweep_table([])


def test_sweep_with_real_measurement():
    from repro.core import optimal_k

    points = sweep(optimal_k, {"n": [16, 64], "m": [1, 8]})
    values = {(p["n"], p["m"]): p.value for p in points}
    assert values[(64, 1)] == 6 and values[(64, 8)] == 2


# ---------------------------------------------------------------------------
# run_sweep: the parallel engine
# ---------------------------------------------------------------------------

def test_empty_grid_rejected():
    with pytest.raises(ValueError, match="no axes"):
        run_sweep(picklable_measure, {})
    with pytest.raises(ValueError, match="axis 'm'"):
        sweep(picklable_measure, {"n": [1, 2], "m": []})


def test_invalid_engine_arguments_rejected():
    with pytest.raises(ValueError):
        run_sweep(picklable_measure, {"n": [1], "m": [1]}, workers=0)
    with pytest.raises(ValueError):
        run_sweep(picklable_measure, {"n": [1], "m": [1]}, chunk_size=0)


def test_parallel_is_byte_identical_to_serial():
    """Determinism regression: guards the parallel merge path forever."""
    grids = {"n": list(range(1, 26)), "m": [1, 2, 3, 4]}  # 100 points
    serial = run_sweep(picklable_measure, grids, workers=1)
    parallel = run_sweep(picklable_measure, grids, workers=4, chunk_size=7)
    assert pickle.dumps(serial) == pickle.dumps(parallel)
    # Grid order (last axis fastest) is preserved by the parallel merge.
    assert [p.params for p in parallel][:5] == [
        {"n": 1, "m": 1},
        {"n": 1, "m": 2},
        {"n": 1, "m": 3},
        {"n": 1, "m": 4},
        {"n": 2, "m": 1},
    ]


def test_unpicklable_measure_falls_back_to_serial():
    offset = 10  # closure over a local -> unpicklable measure
    points = run_sweep(lambda x: x + offset, {"x": [1, 2, 3]}, workers=4)
    assert [p.value for p in points] == [11, 12, 13]


def test_parallel_progress_sees_every_point_in_grid_order():
    seen = []
    run_sweep(
        picklable_measure,
        {"n": [1, 2], "m": [3, 4]},
        workers=2,
        progress=lambda params: seen.append((params["n"], params["m"])),
    )
    assert seen == [(1, 3), (1, 4), (2, 3), (2, 4)]


def test_store_skips_already_computed_points(tmp_path):
    path = tmp_path / "store.json"
    grids = {"n": [1, 2, 3], "m": [1, 2]}
    first = SweepStore(path)
    computed = run_sweep(picklable_measure, grids, store=first)
    assert first.misses == 6 and first.hits == 0
    assert len(first) == 6

    calls = []

    def tracking(n, m):  # unpicklable on purpose; runs serial
        calls.append((n, m))
        return picklable_measure(n, m)

    second = SweepStore(path)
    replayed = run_sweep(tracking, grids, store=second)
    assert calls == []  # nothing recomputed
    assert second.hits == 6 and second.misses == 0
    # JSON round-trips tuples as lists; params and ordering are intact.
    assert [p.params for p in replayed] == [p.params for p in computed]
    assert [p.value for p in replayed] == [list(p.value) for p in computed]


def test_store_extends_incrementally(tmp_path):
    path = tmp_path / "store.json"
    run_sweep(picklable_measure, {"n": [1], "m": [1, 2]}, store=path)
    store = SweepStore(path)
    run_sweep(picklable_measure, {"n": [1, 2], "m": [1, 2]}, store=store)
    assert store.hits == 2 and store.misses == 2
    assert len(SweepStore(path)) == 4


def test_store_rejects_unserializable_values(tmp_path):
    with pytest.raises(TypeError, match="JSON-serializable"):
        run_sweep(lambda x: object(), {"x": [1]}, store=tmp_path / "bad.json")


def test_parallel_with_store_only_measures_missing_points(tmp_path):
    path = tmp_path / "store.json"
    run_sweep(picklable_measure, {"n": [1, 2], "m": [1, 2]}, store=path)
    store = SweepStore(path)
    points = run_sweep(
        picklable_measure, {"n": [1, 2, 3, 4], "m": [1, 2]}, workers=4, store=store
    )
    assert store.hits == 4 and store.misses == 4
    expected = run_sweep(picklable_measure, {"n": [1, 2, 3, 4], "m": [1, 2]})
    assert [tuple(p.value) for p in points] == [tuple(p.value) for p in expected]


def test_serial_sweep_records_a_span_per_point():
    from repro.obs import Tracer

    tracer = Tracer()
    run_sweep(picklable_measure, {"n": [1, 2], "m": [3]}, tracer=tracer)
    spans = [e for e in tracer.events if e.ph == "X"]
    assert len(spans) == 2
    assert all(e.cat == "sweep" and e.name == "point" for e in spans)
    assert spans[0].args == {"n": 1, "m": 3}


def test_parallel_sweep_records_a_span_per_chunk():
    from repro.obs import Tracer

    tracer = Tracer()
    run_sweep(
        picklable_measure, {"n": [1, 2, 3, 4], "m": [1, 2]}, workers=2, tracer=tracer
    )
    spans = [e for e in tracer.events if e.ph == "X"]
    assert spans and all(e.name.startswith("chunk") for e in spans)
    assert sum(e.args["points"] for e in spans) == 8


def test_store_flush_embeds_run_manifest(tmp_path):
    import json

    path = tmp_path / "store.json"
    run_sweep(picklable_measure, {"n": [1, 2], "m": [1]}, store=path)
    doc = json.loads(path.read_text())
    assert doc["version"] == 1
    manifest = doc["manifest"]
    assert manifest["schema"] == 1 and manifest["package"] == "repro"
    assert manifest["points"] == 2
    # The store still round-trips through SweepStore after the format gained
    # its manifest envelope.
    store = SweepStore(path)
    assert len(store) == 2


# -- durability: checkpointed runs, corrupt stores ---------------------------

COUNT_FILE = None  # set per-test via _counting_measure's side-channel file


def _counting_measure(n, m):
    """Same name across calls so the checkpoint fingerprint matches."""
    with open(COUNT_FILE, "a") as fh:
        fh.write(f"{n},{m}\n")
    return picklable_measure(n, m)


def test_checkpoint_resume_skips_journaled_chunks(tmp_path):
    global COUNT_FILE
    COUNT_FILE = str(tmp_path / "calls.log")
    checkpoint = tmp_path / "sweep.ckpt"
    grids = {"n": [1, 2], "m": [1, 2, 3]}

    full = run_sweep(_counting_measure, grids, chunk_size=2, checkpoint=checkpoint)
    first_calls = len(open(COUNT_FILE).readlines())
    assert first_calls == 6

    # Simulate a crash after the first chunk: keep header + one chunk line.
    lines = checkpoint.read_text().splitlines(keepends=True)
    checkpoint.write_text("".join(lines[:2]))

    resumed = run_sweep(_counting_measure, grids, chunk_size=2, checkpoint=checkpoint)
    recomputed = len(open(COUNT_FILE).readlines()) - first_calls
    assert recomputed == 4  # only the two lost chunks re-ran
    # Journaled values round-trip through JSON (tuples become lists), the
    # same canonical form every store sees — compare in that form.
    import json

    canonical = [json.dumps(p.value) for p in full]
    assert [json.dumps(p.value) for p in resumed] == canonical
    assert [p.params for p in resumed] == [p.params for p in full]


def test_completed_checkpoint_recomputes_nothing(tmp_path):
    global COUNT_FILE
    COUNT_FILE = str(tmp_path / "calls.log")
    checkpoint = tmp_path / "sweep.ckpt"
    grids = {"n": [1, 2], "m": [1, 2]}
    run_sweep(_counting_measure, grids, checkpoint=checkpoint)
    before = len(open(COUNT_FILE).readlines())
    run_sweep(_counting_measure, grids, checkpoint=checkpoint)
    assert len(open(COUNT_FILE).readlines()) == before


def test_checkpointed_store_manifest_reports_resume(tmp_path):
    import json

    global COUNT_FILE
    COUNT_FILE = str(tmp_path / "calls.log")
    checkpoint = tmp_path / "sweep.ckpt"
    store = tmp_path / "store.json"
    run_sweep(
        _counting_measure, {"n": [1, 2], "m": [1, 2]}, checkpoint=checkpoint, store=store
    )
    manifest = json.loads(store.read_text())["manifest"]
    snap = manifest["checkpoint"]
    assert snap["path"].endswith("sweep.ckpt")
    assert snap["resumed_chunks"] == 0
    assert snap["journaled_chunks"] >= 1


def test_corrupt_store_raises_typed_error(tmp_path):
    from repro.durable import StoreCorruptionError

    path = tmp_path / "store.json"
    run_sweep(picklable_measure, {"n": [1], "m": [1]}, store=path)
    path.write_text(path.read_text()[:-20])  # truncate: invalid JSON
    with pytest.raises(StoreCorruptionError):
        SweepStore(path)


def test_corrupt_store_quarantine_and_continue(tmp_path):
    path = tmp_path / "store.json"
    run_sweep(picklable_measure, {"n": [1], "m": [1]}, store=path)
    path.write_text("{not json")
    store = SweepStore(path, on_corruption="quarantine")
    assert len(store) == 0
    assert store.quarantined_to == str(path) + ".corrupt"
    assert (tmp_path / "store.json.corrupt").read_text() == "{not json"
    # The sweep proceeds as if the store were empty, then heals the file.
    run_sweep(picklable_measure, {"n": [1], "m": [1]}, store=store)
    assert len(SweepStore(path)) == 1


def test_invalid_on_corruption_mode_rejected(tmp_path):
    from repro.durable import ValidationError

    with pytest.raises(ValidationError):
        SweepStore(tmp_path / "s.json", on_corruption="explode")
