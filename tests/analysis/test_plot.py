"""ASCII plotting."""

from __future__ import annotations

import pytest

from repro.analysis import ascii_plot


def test_basic_render_contains_glyphs_and_legend():
    out = ascii_plot([1, 2, 3], {"up": [1.0, 2.0, 3.0], "down": [3.0, 2.0, 1.0]})
    assert "o = up" in out and "x = down" in out
    assert "o" in out and "x" in out


def test_extremes_labelled():
    out = ascii_plot([0, 10], {"line": [5.0, 25.0]})
    assert "25.0" in out and "5.0" in out
    assert "0" in out and "10" in out


def test_title_and_ylabel():
    out = ascii_plot([1, 2], {"a": [1, 2]}, title="My Figure", y_label="us")
    lines = out.splitlines()
    assert lines[0] == "My Figure" and lines[1] == "us"


def test_flat_series_renders():
    out = ascii_plot([1, 2, 3], {"flat": [7.0, 7.0, 7.0]})
    body = [line for line in out.splitlines() if "|" in line]
    assert sum(line.count("o") for line in body) == 3


def test_monotone_series_has_monotone_glyph_rows():
    out = ascii_plot([1, 2, 3, 4], {"a": [1.0, 2.0, 3.0, 4.0]}, width=16, height=8)
    cols = [
        line.index("o")
        for line in out.splitlines()
        if "o" in line and "|" in line
    ]
    # Reading top to bottom: higher values (upper rows) sit at later x
    # positions, so the columns descend.
    assert cols == sorted(cols, reverse=True)
    assert len(cols) == 4


def test_validation():
    with pytest.raises(ValueError):
        ascii_plot([], {"a": []})
    with pytest.raises(ValueError):
        ascii_plot([1], {})
    with pytest.raises(ValueError):
        ascii_plot([1, 2], {"a": [1.0]})
    with pytest.raises(ValueError):
        ascii_plot([1], {"a": [1.0]}, width=2)
