"""The shared Zipf load shaper (extracted from the A15 bench + arrivals).

The extraction contract is bit-compatibility: ``zipf_draw`` consumes
exactly one ``rng.random()`` per draw (so seeded arrival streams are
unchanged), and ``zipf_plan_mix(seed=None)`` reproduces the historical
rank-ordered A15 mix byte for byte.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis.load import zipf_draw, zipf_plan_mix, zipf_weights
from repro.sessions import flash_crowd_sessions


class TestZipfWeights:
    def test_shape(self):
        assert zipf_weights(4) == (1.0, 0.5, 1 / 3, 0.25)
        assert zipf_weights(3, a=2.0) == (1.0, 0.25, 1 / 9)

    def test_validation(self):
        with pytest.raises(ValueError):
            zipf_weights(0)
        with pytest.raises(ValueError):
            zipf_weights(4, a=0.0)


class TestZipfDraw:
    def test_range_and_determinism(self):
        rng = random.Random(7)
        draws = [zipf_draw(rng, 12, 1.2) for _ in range(500)]
        assert all(1 <= d <= 12 for d in draws)
        assert draws == [zipf_draw(random.Random(7), 12, 1.2) for _ in range(1)][
            :1
        ] + draws[1:]

    def test_consumes_exactly_one_random_call(self):
        # The contract that keeps historical seeded streams identical.
        a, b = random.Random(3), random.Random(3)
        zipf_draw(a, 16, 1.0)
        b.random()
        assert a.random() == b.random()

    def test_skews_toward_small_values(self):
        rng = random.Random(0)
        draws = [zipf_draw(rng, 32, 1.0) for _ in range(2000)]
        ones = draws.count(1)
        assert ones > draws.count(32)
        assert ones / len(draws) > 0.15  # rank-1 mass of H(32) ≈ 0.25

    def test_flash_crowd_stream_unchanged(self):
        # The arrivals module now imports zipf_draw; same seed, same
        # sessions as the private-copy era.
        hosts = list(range(16))
        batch = flash_crowd_sessions(hosts, count=16, max_dests=7, packets=2, seed=11)
        again = flash_crowd_sessions(hosts, count=16, max_dests=7, packets=2, seed=11)
        assert batch == again
        assert len({len(s.destinations) for s in batch}) > 1


class TestZipfPlanMix:
    def test_historical_rank_order_shape(self):
        mix = zipf_plan_mix(64, n_keys=4, ms=(4,))
        assert len(mix) == 64
        assert mix[0] == (8, 4)  # the hottest key leads, rank order
        counts = {key: mix.count(key) for key in set(mix)}
        assert counts[(8, 4)] > counts[(32, 4)]  # Zipf head > tail
        assert set(mix) == {(8, 4), (16, 4), (24, 4), (32, 4)}

    def test_every_key_appears_while_room_remains(self):
        mix = zipf_plan_mix(160)
        assert len(mix) == 160
        assert len(set(mix)) == 32  # 16 n-keys x 2 ms, all present
        # A tight budget truncates the coldest tail keys, never the head.
        tight = zipf_plan_mix(96)
        assert len(tight) == 96
        assert (8, 4) in tight and len(set(tight)) >= 30

    def test_seed_shuffles_reproducibly(self):
        ordered = zipf_plan_mix(96, n_keys=8)
        shuffled = zipf_plan_mix(96, n_keys=8, seed=0)
        assert sorted(shuffled) == sorted(ordered)  # same multiset
        assert shuffled != ordered  # different arrival order
        assert shuffled == zipf_plan_mix(96, n_keys=8, seed=0)
        assert shuffled != zipf_plan_mix(96, n_keys=8, seed=1)

    def test_validation(self):
        with pytest.raises(ValueError):
            zipf_plan_mix(0)
