"""Statistics helpers."""

from __future__ import annotations

import pytest

from repro.analysis import summarize


def test_summarize_basic():
    s = summarize([1.0, 2.0, 3.0, 4.0])
    assert s.mean == 2.5
    assert s.minimum == 1.0 and s.maximum == 4.0
    assert s.count == 4


def test_summarize_singleton():
    s = summarize([7.0])
    assert s.mean == 7.0 and s.std == 0.0 and s.sem == 0.0


def test_summarize_std():
    s = summarize([2.0, 4.0])
    assert s.std == pytest.approx(1.0)


def test_ci_halfwidth_positive_for_spread_data():
    s = summarize([1.0, 5.0, 9.0, 13.0])
    assert s.ci95_halfwidth > 0


def test_empty_rejected():
    with pytest.raises(ValueError):
        summarize([])
