"""Experiment drivers: protocol, determinism, and series shapes."""

from __future__ import annotations

import pytest

from repro.analysis import (
    ExperimentConfig,
    fig12a_optimal_k,
    fig12b_optimal_k,
    sweep_latency,
)
from repro.analysis.experiments import (
    _destination_sets,
    binomial,
    kbinomial_optimal,
    linear,
)
from repro.core import min_k_binomial
from repro.network import host

TINY = ExperimentConfig(n_topologies=1, n_dest_sets=2, seed=5)


class TestConfig:
    def test_paper_protocol(self):
        cfg = ExperimentConfig.paper()
        assert cfg.n_topologies == 10 and cfg.n_dest_sets == 30

    def test_from_env_respects_flag(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL", "1")
        assert ExperimentConfig.from_env().n_dest_sets == 30
        monkeypatch.delenv("REPRO_FULL")
        assert ExperimentConfig.from_env().n_dest_sets == 6


class TestDestinationSets:
    def test_draw_shape(self):
        import random

        hosts = [host(i) for i in range(20)]
        draws = _destination_sets(hosts, 5, 3, random.Random(0))
        assert len(draws) == 3
        for src, dests in draws:
            assert len(dests) == 5
            assert src not in dests
            assert len(set(dests)) == 5

    def test_too_many_destinations_rejected(self):
        import random

        with pytest.raises(ValueError):
            _destination_sets([host(0), host(1)], 2, 1, random.Random(0))


class TestFig12Drivers:
    def test_fig12a_shapes(self):
        data = fig12a_optimal_k(dest_counts=(15, 63), m_values=range(1, 11))
        assert set(data) == {15, 63}
        assert len(data[15]) == 10
        assert data[63][0] == 6  # m=1: ceil(log2 64)

    def test_fig12b_shapes(self):
        data = fig12b_optimal_k(m_values=(1, 8), n_values=range(2, 65))
        assert data[1][-1] == 6
        assert data[8][-1] == 2

    def test_fig12b_m1_equals_ceil_log2(self):
        data = fig12b_optimal_k(m_values=(1,), n_values=range(2, 65))
        assert data[1] == [min_k_binomial(n) for n in range(2, 65)]


class TestSweep:
    def test_deterministic(self):
        a = sweep_latency(7, 2, kbinomial_optimal, TINY)
        b = sweep_latency(7, 2, kbinomial_optimal, TINY)
        assert a == b

    def test_seed_changes_results(self):
        a = sweep_latency(7, 2, kbinomial_optimal, TINY)
        b = sweep_latency(7, 2, kbinomial_optimal, ExperimentConfig(1, 2, seed=6))
        assert a != b

    def test_latency_grows_with_m(self):
        lat = [sweep_latency(15, m, kbinomial_optimal, TINY) for m in (1, 4, 8)]
        assert lat == sorted(lat)

    def test_latency_grows_with_n(self):
        lat = [sweep_latency(d, 4, kbinomial_optimal, TINY) for d in (7, 31, 63)]
        assert lat == sorted(lat)

    def test_kbinomial_not_worse_than_baselines_multipacket(self):
        m = 8
        kbin = sweep_latency(31, m, kbinomial_optimal, TINY)
        bino = sweep_latency(31, m, binomial, TINY)
        line = sweep_latency(31, m, linear, TINY)
        assert kbin <= bino
        assert kbin <= line


class TestSweepStatistics:
    def test_latencies_count_matches_protocol(self):
        lats = __import__("repro.analysis", fromlist=["sweep_latencies"]).sweep_latencies(
            7, 2, kbinomial_optimal, TINY
        )
        assert len(lats) == TINY.n_topologies * TINY.n_dest_sets

    def test_summary_consistent_with_mean(self):
        from repro.analysis import sweep_latency, sweep_latency_summary

        summary = sweep_latency_summary(7, 2, kbinomial_optimal, TINY)
        mean = sweep_latency(7, 2, kbinomial_optimal, TINY)
        assert summary.mean == pytest.approx(mean)
        assert summary.count == TINY.n_topologies * TINY.n_dest_sets
        assert summary.ci95_halfwidth >= 0


class TestFigureDrivers:
    """Shape checks for the simulation figure drivers at tiny scale."""

    def test_fig13a_driver(self):
        from repro.analysis import fig13a_latency_vs_m

        data = fig13a_latency_vs_m(TINY, dest_counts=(15, 7), m_values=(1, 4))
        assert set(data) == {15, 7}
        assert all(len(v) == 2 for v in data.values())
        assert data[15][1] > data[15][0]  # grows with m

    def test_fig13b_driver(self):
        from repro.analysis import fig13b_latency_vs_n

        data = fig13b_latency_vs_n(TINY, m_values=(2,), dest_counts=(7, 31))
        assert data[2][1] > data[2][0]  # grows with n

    def test_fig14a_driver(self):
        from repro.analysis import fig14a_comparison_vs_m

        data = fig14a_comparison_vs_m(TINY, dest_counts=(15,), m_values=(1, 8))
        curves = data[15]
        assert set(curves) == {"binomial", "kbinomial"}
        assert curves["kbinomial"][1] <= curves["binomial"][1]

    def test_fig14b_driver(self):
        from repro.analysis import fig14b_comparison_vs_n

        data = fig14b_comparison_vs_n(TINY, m_values=(8,), dest_counts=(15, 31))
        curves = data[8]
        for i in range(2):
            assert curves["kbinomial"][i] <= curves["binomial"][i]
