"""Public API contract: exports resolve, are documented, and re-import.

A release-hygiene net: every name in every package's ``__all__`` must
exist, carry a docstring (functions/classes), and the top-level package
must re-export the advertised surface.
"""

from __future__ import annotations

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.sim",
    "repro.core",
    "repro.network",
    "repro.nic",
    "repro.mcast",
    "repro.analysis",
    "repro.obs",
    "repro.faults",
    "repro.durable",
    "repro.sessions",
    "repro.cluster",
    "repro.membership",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_exports_resolve(package_name):
    package = importlib.import_module(package_name)
    for name in package.__all__:
        assert hasattr(package, name), f"{package_name}.__all__ lists missing {name!r}"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_exports_documented(package_name):
    package = importlib.import_module(package_name)
    undocumented = []
    for name in package.__all__:
        obj = getattr(package, name, None)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if not (obj.__doc__ or "").strip():
                undocumented.append(name)
    assert not undocumented, f"{package_name}: missing docstrings on {undocumented}"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_package_docstring_present(package_name):
    package = importlib.import_module(package_name)
    assert (package.__doc__ or "").strip(), f"{package_name} lacks a module docstring"


def test_public_methods_documented():
    """Public methods of the flagship classes carry docstrings."""
    from repro import Machine, MulticastSimulator, MulticastTree
    from repro.sim import Environment

    for cls in (Machine, MulticastSimulator, MulticastTree, Environment):
        for name, member in inspect.getmembers(cls, inspect.isfunction):
            if name.startswith("_"):
                continue
            assert (member.__doc__ or "").strip(), f"{cls.__name__}.{name} undocumented"


def test_version_exposed():
    import repro

    assert repro.__version__ == "1.0.0"


def test_star_import_is_clean():
    namespace: dict = {}
    exec("from repro import *", namespace)  # noqa: S102 - deliberate
    assert "MulticastSimulator" in namespace
    assert "optimal_k" in namespace
