"""Integration tests pinning every quantitative claim in the paper.

Each test cites the section/figure it validates.  These are the
regression net for the reproduction: if any of them fails, the repo no
longer reproduces the paper.
"""

from __future__ import annotations

import math

import pytest

from repro.analysis import ExperimentConfig, sweep_latency
from repro.analysis.experiments import binomial, kbinomial_optimal
from repro.core import (
    build_binomial_tree,
    build_kbinomial_tree,
    build_linear_tree,
    compare_buffers,
    conventional_latency_model,
    coverage,
    fpfs_total_steps,
    multicast_latency_model,
    optimal_k,
    packet_completion_steps,
    steps_needed,
)
from repro.params import PAPER_PARAMS

CFG = ExperimentConfig(n_topologies=2, n_dest_sets=4, seed=2024)


class TestSection25:
    """Smart vs conventional NI latency formulas (Fig. 4)."""

    def test_binomial_3dest_example(self):
        # Conventional: 2 (t_step + t_s + t_r); smart: t_s + 2 t_step + t_r.
        p = PAPER_PARAMS
        conventional = conventional_latency_model(4, 1, p)
        smart = multicast_latency_model(2, p)
        assert conventional == pytest.approx(2 * (p.t_step + p.t_s + p.t_r))
        assert smart == pytest.approx(p.t_s + 2 * p.t_step + p.t_r)
        assert smart < conventional

    @pytest.mark.parametrize("n", [2, 8, 16, 64])
    def test_smart_always_wins_for_single_packet(self, n):
        p = PAPER_PARAMS
        hops = math.ceil(math.log2(n))
        smart = multicast_latency_model(hops, p)
        conventional = conventional_latency_model(n, 1, p)
        if n == 2:
            # One hop, no forwarding: both pay t_s + t_step + t_r.
            assert smart == pytest.approx(conventional)
        else:
            assert smart < conventional


class TestSection26:
    """Binomial tree is NOT optimal under packetization (Fig. 5)."""

    def test_fig5_binomial_6_linear_5(self):
        chain = list(range(4))
        assert fpfs_total_steps(build_binomial_tree(chain), 3) == 6
        assert fpfs_total_steps(build_linear_tree(chain), 3) == 5

    def test_fig5_latencies(self):
        p = PAPER_PARAMS
        lat_bin = multicast_latency_model(6, p)
        lat_lin = multicast_latency_model(5, p)
        assert lat_lin < lat_bin


class TestSection332:
    """FPFS buffer residency <= FCFS, always (best-case analysis)."""

    def test_tp_less_equal_tc_everywhere(self):
        for c in range(1, 9):
            for p in range(1, 33):
                cmp = compare_buffers(c, p)
                assert cmp.fpfs <= cmp.fcfs

    def test_fcfs_residency_formula_example(self):
        # c=3 children, p=4 packets: ((4-i+1) + 1*4 + i) = 9 for any i.
        from repro.core import fcfs_buffer_time

        assert fcfs_buffer_time(3, 4) == 9.0


class TestSection41:
    """Pipelined model (Fig. 8, Theorems 1-2)."""

    def test_fig8_seven_dest_binomial(self):
        tree = build_binomial_tree(list(range(8)))
        assert packet_completion_steps(tree, 3) == [3, 6, 9]

    def test_theorem1_interval_equals_root_fanout(self):
        for k in (2, 3):
            n = coverage(k + 2, k)
            tree = build_kbinomial_tree(list(range(n)), k)
            completions = packet_completion_steps(tree, 6)
            gaps = {b - a for a, b in zip(completions, completions[1:])}
            assert gaps == {k}

    def test_theorem2_closed_form(self):
        k, s, m = 3, 5, 7
        n = coverage(s, k)
        tree = build_kbinomial_tree(list(range(n)), k)
        assert fpfs_total_steps(tree, m) == s + (m - 1) * k


class TestSection42:
    """Theorem 3: the k-binomial tree is optimal."""

    def test_lemma1_table_values(self):
        assert [coverage(s, 2) for s in range(9)] == [1, 2, 4, 7, 12, 20, 33, 54, 88]

    def test_optimal_tree_beats_both_extremes(self):
        for n, m in [(16, 4), (32, 8), (64, 16)]:
            chain = list(range(n))
            opt = fpfs_total_steps(build_kbinomial_tree(chain, optimal_k(n, m)), m)
            assert opt <= fpfs_total_steps(build_binomial_tree(chain), m)
            assert opt <= fpfs_total_steps(build_linear_tree(chain), m)


class TestSection51:
    """Optimal-k behaviour (Fig. 12)."""

    def test_m1_optimal_is_ceil_log2(self):
        for dests in (15, 31, 47, 63):
            assert optimal_k(dests + 1, 1) == math.ceil(math.log2(dests + 1))

    def test_k_converges_downward_with_m(self):
        ks = [optimal_k(64, m) for m in range(1, 36)]
        assert ks[0] == 6
        assert ks[-1] <= 2
        assert all(a >= b for a, b in zip(ks, ks[1:]))

    def test_small_set_crosses_to_linear_before_large_set(self):
        # Fig. 12(a): 15 dests reaches k=1 within m<=35; 63 dests does not.
        ks15 = [optimal_k(16, m) for m in range(1, 36)]
        ks63 = [optimal_k(64, m) for m in range(1, 36)]
        assert 1 in ks15
        assert 1 not in ks63

    def test_fig12b_plateau_at_2_for_4_and_8_packets(self):
        # "for multicast messages of length 4 or 8 packets, the optimal
        # value of k is 2 as the multicast set size is increased"
        for m in (4, 8):
            assert optimal_k(64, m) == 2
            assert optimal_k(48, m) == 2


class TestSection52:
    """Simulation results (Figs. 13-14) — reduced-protocol shape checks."""

    def test_kbinomial_beats_binomial_for_long_messages(self):
        m = 16
        kbin = sweep_latency(47, m, kbinomial_optimal, CFG)
        bino = sweep_latency(47, m, binomial, CFG)
        assert bino / kbin > 1.4  # paper: up to factor of 2

    def test_improvement_grows_with_packet_count(self):
        ratios = []
        for m in (2, 8, 32):
            kbin = sweep_latency(47, m, kbinomial_optimal, CFG)
            bino = sweep_latency(47, m, binomial, CFG)
            ratios.append(bino / kbin)
        assert ratios == sorted(ratios)

    def test_factor_of_two_reached_at_32_packets(self):
        m = 32
        kbin = sweep_latency(63, m, kbinomial_optimal, CFG)
        bino = sweep_latency(63, m, binomial, CFG)
        assert bino / kbin > 1.8

    def test_single_packet_trees_equivalent(self):
        # m=1: optimal k = ceil(log2 n); both trees take the same steps.
        kbin = sweep_latency(31, 1, kbinomial_optimal, CFG)
        bino = sweep_latency(31, 1, binomial, CFG)
        assert kbin == pytest.approx(bino, rel=0.1)

    def test_latency_magnitude_matches_paper_ballpark(self):
        # Fig. 13(b): 8 packets, 63 dests lands near ~190 µs in the
        # paper; our substrate should be within a factor of ~1.6.
        lat = sweep_latency(63, 8, kbinomial_optimal, CFG)
        assert 100 <= lat <= 320
