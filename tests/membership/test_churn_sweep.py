"""Churn sweep: replay determinism across workers, smoke contract, CLI."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.membership import (
    SCENARIOS,
    churn_point,
    churn_smoke,
    churn_sweep,
    churn_table,
    load_records,
    records_json,
)


class TestDeterminism:
    def test_records_identical_across_worker_counts(self):
        serial = records_json(churn_sweep(seeds=(0,), dests=15, m=4, workers=1))
        parallel = records_json(churn_sweep(seeds=(0,), dests=15, m=4, workers=4))
        assert serial == parallel

    def test_point_is_a_pure_function_of_its_arguments(self):
        a = churn_point("poisson", 0, 15, 4)
        b = churn_point("poisson", 0, 15, 4)
        assert a == b

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            churn_point("meteor", 0, 15, 4)


class TestSmoke:
    @pytest.fixture(scope="class")
    def records(self):
        return churn_smoke()

    def test_covers_every_scenario(self, records):
        assert [r["scenario"] for r in records] == list(SCENARIOS)

    def test_every_scenario_delivers_to_stable_members(self, records):
        for record in records:
            assert record["stable_complete"], record["scenario"]
            assert record["delivery_to_stable"] == 1.0, record["scenario"]

    def test_baseline_row_is_clean(self, records):
        base = next(r for r in records if r["scenario"] == "baseline")
        assert base["events"] == 0 and base["amends"] == 0
        assert sum(base["dropped"].values()) == 0

    def test_poisson_mixes_joins_and_leaves(self, records):
        poisson = next(r for r in records if r["scenario"] == "poisson")
        assert poisson["joins"] > 0 and poisson["leaves"] > 0

    def test_flash_join_catches_everyone_up(self, records):
        flash = next(r for r in records if r["scenario"] == "flash_join")
        assert flash["joined"] > 0
        assert flash["caught_up"] == flash["joined"]

    def test_correlated_leave_amends(self, records):
        corr = next(r for r in records if r["scenario"] == "correlated_leave")
        assert corr["departed"] >= 1 and corr["amends"] >= 1

    def test_records_round_trip(self, records, tmp_path):
        path = tmp_path / "churn_records.json"
        path.write_text(records_json(records))
        assert load_records(path) == records

    def test_load_records_rejects_corruption(self, tmp_path):
        from repro.durable.errors import StoreCorruptionError

        path = tmp_path / "bad.json"
        path.write_text('[{"scenario": "poisson"')
        with pytest.raises(StoreCorruptionError, match="truncated or corrupt"):
            load_records(path)
        path.write_text('{"not": "a list"}')
        with pytest.raises(StoreCorruptionError, match="JSON array"):
            load_records(path)

    def test_table_renders_every_scenario(self, records):
        table = churn_table(records)
        for scenario in SCENARIOS:
            assert scenario in table


class TestCLI:
    def test_churn_smoke_subcommand(self, capsys):
        assert main(["churn", "--smoke"]) == 0
        out = capsys.readouterr().out
        assert "membership churn" in out
        assert "churn smoke OK" in out

    def test_churn_writes_records_with_manifest(self, capsys, tmp_path):
        out_path = tmp_path / "churn.json"
        code = main(
            ["churn", "--runs", "1", "--dests", "7", "--bytes", "128", "--out", str(out_path)]
        )
        assert code == 0
        payload = json.loads(out_path.read_text())
        assert payload["version"] == 1
        assert "manifest" in payload
        assert [r["scenario"] for r in payload["records"]] == list(SCENARIOS)
