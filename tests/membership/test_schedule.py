"""Membership schedules: value semantics, canonical JSON, generators."""

from __future__ import annotations

import pytest

from repro.membership import (
    MEMBERSHIP_KINDS,
    MembershipEvent,
    MembershipSchedule,
    correlated_leave_schedule,
    flash_join_schedule,
    poisson_churn_schedule,
)

H = [("host", i) for i in range(16)]


class TestEvent:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown membership kind"):
            MembershipEvent(1.0, "crash", H[0])

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            MembershipEvent(-0.5, "join", H[0])

    def test_round_trip_preserves_tuple_nodes(self):
        event = MembershipEvent(3.0, "rejoin", H[5])
        again = MembershipEvent.from_dict(event.to_dict())
        assert again == event
        assert isinstance(again.node, tuple)

    def test_unknown_wire_field_rejected(self):
        with pytest.raises(ValueError, match="unknown MembershipEvent fields"):
            MembershipEvent.from_dict(
                {"time": 1.0, "kind": "join", "node": 1, "extra": 2}
            )


class TestSchedule:
    def test_events_sorted_and_order_insensitive(self):
        a = MembershipEvent(9.0, "leave", H[1])
        b = MembershipEvent(2.0, "join", H[2])
        assert MembershipSchedule((a, b)) == MembershipSchedule((b, a))
        assert [e.time for e in MembershipSchedule((a, b))] == [2.0, 9.0]

    def test_json_round_trip_is_canonical(self):
        schedule = poisson_churn_schedule(
            H[:8], H[8:], rate=0.1, horizon=60.0, seed=7
        )
        text = schedule.to_json()
        assert MembershipSchedule.from_json(text) == schedule
        assert MembershipSchedule.from_json(text).to_json() == text

    def test_unsupported_version_rejected(self):
        with pytest.raises(ValueError, match="version"):
            MembershipSchedule.from_dict({"version": 2, "events": []})

    def test_stable_excludes_every_leaver(self):
        schedule = MembershipSchedule(
            (
                MembershipEvent(1.0, "leave", H[3]),
                MembershipEvent(2.0, "join", H[9]),
                MembershipEvent(4.0, "leave", H[5]),
            )
        )
        assert schedule.stable(H[:8]) == tuple(
            h for h in H[:8] if h not in (H[3], H[5])
        )
        assert schedule.joiners() == frozenset({H[9]})
        assert schedule.leavers() == frozenset({H[3], H[5]})

    def test_until_clips_by_time(self):
        schedule = MembershipSchedule(
            tuple(MembershipEvent(float(t), "join", H[t]) for t in range(1, 6))
        )
        assert len(schedule.until(3.0)) == 3
        assert not schedule.until(0.5)


class TestGenerators:
    def test_poisson_deterministic_and_legal(self):
        kwargs = dict(rate=0.2, horizon=80.0, seed=11, exclude=(H[0],))
        one = poisson_churn_schedule(H[:8], H[8:], **kwargs)
        two = poisson_churn_schedule(H[:8], H[8:], **kwargs)
        assert one == two and one.to_json() == two.to_json()
        assert all(e.kind in MEMBERSHIP_KINDS for e in one)
        assert H[0] not in one.leavers()
        # replaying the schedule keeps membership legal at every step
        inside = set(H[:8])
        for event in one:
            if event.kind == "leave":
                assert event.node in inside
                inside.discard(event.node)
            else:
                assert event.node not in inside
                inside.add(event.node)

    def test_poisson_rejoin_marks_returning_leavers(self):
        schedule = poisson_churn_schedule(
            H[:6], H[6:8], rate=0.5, horizon=200.0, seed=3
        )
        rejoins = [e.node for e in schedule if e.kind == "rejoin"]
        for node in rejoins:
            earlier = [
                e
                for e in schedule
                if e.node == node and e.kind == "leave" and e.time < min(
                    ev.time for ev in schedule if ev.node == node and ev.kind == "rejoin"
                )
            ]
            assert earlier, node

    def test_flash_join_spacing_and_shuffle(self):
        schedule = flash_join_schedule(H[:4], at=10.0, spacing=2.0, seed=5)
        assert sorted(e.time for e in schedule) == [10.0, 12.0, 14.0, 16.0]
        assert {e.node for e in schedule} == set(H[:4])
        assert all(e.kind == "join" for e in schedule)

    def test_correlated_leave_size_and_exclusion(self):
        schedule = correlated_leave_schedule(
            H[:8], at=5.0, fraction=0.5, seed=2, exclude=(H[0],)
        )
        assert all(e.kind == "leave" and e.time == 5.0 for e in schedule)
        assert H[0] not in schedule.leavers()
        assert len(schedule) == round(0.5 * 7)

    def test_generator_validation(self):
        with pytest.raises(ValueError, match="rate"):
            poisson_churn_schedule(H[:4], H[4:], rate=0.0, horizon=10.0, seed=0)
        with pytest.raises(ValueError, match="fraction"):
            correlated_leave_schedule(H[:4], at=1.0, fraction=0.0, seed=0)
        with pytest.raises(ValueError, match="spacing"):
            flash_join_schedule(H[:4], at=1.0, spacing=-1.0)
