"""Churn runtime: graceful degradation, repair triggers, bit-identity."""

from __future__ import annotations

import pytest

from repro import MulticastSimulator, build_kbinomial_tree, chain_for, optimal_k
from repro.analysis.experiments import _testbed
from repro.membership import (
    ChurnSimulator,
    MembershipEvent,
    MembershipSchedule,
    poisson_churn_schedule,
)


@pytest.fixture(scope="module")
def testbed():
    return _testbed(1997)


def _setup(testbed, dests_count, m):
    topology, router, ordering = testbed
    source = ordering[0]
    dests = list(ordering[1 : dests_count + 1])
    return topology, router, ordering, source, dests


class TestEmptySchedule:
    def test_bit_identical_to_plain_simulator(self, testbed):
        """The cardinal invariant: no schedule, no hooks, no divergence."""
        topology, router, ordering, source, dests = _setup(testbed, 15, 4)
        chain = chain_for(source, dests, ordering)
        tree = build_kbinomial_tree(chain, optimal_k(len(chain), 4))
        base = MulticastSimulator(topology, router).run(tree, 4)

        churn = ChurnSimulator(topology, router, base_ordering=ordering)
        result = churn.run_churn(source, dests, 4)

        assert result.completion_time == base.completion_time
        assert result.stable == tuple(tree.destinations())
        assert result.stable_complete and result.delivery_to_stable == 1.0
        assert result.amends == 0 and result.catch_ups == 0
        assert sum(result.dropped.values()) == 0

    def test_no_gates_or_listeners_installed(self, testbed):
        topology, router, ordering, source, dests = _setup(testbed, 7, 2)
        churn = ChurnSimulator(topology, router, base_ordering=ordering)
        churn.run_churn(source, dests, 2)
        assert not churn._gates


class TestPoissonChurn:
    def test_stable_members_get_everything(self, testbed):
        """The acceptance criterion: joins AND leaves mid-multicast,
        100% delivery to every stable member."""
        topology, router, ordering, source, dests = _setup(testbed, 31, 8)
        members = [source] + dests
        pool = [h for h in ordering if h not in set(members)]
        schedule = poisson_churn_schedule(
            members,
            pool,
            rate=0.08,
            horizon=100.0,
            seed=0,
            exclude=(source,),
        )
        joins = len(schedule.joiners())
        leaves = len(schedule.leavers())
        assert joins > 0 and leaves > 0, "seed must mix joins and leaves"

        churn = ChurnSimulator(
            topology, router, schedule=schedule, base_ordering=ordering
        )
        result = churn.run_churn(source, dests, 8, time_limit=20_000.0)

        assert result.stable_complete
        assert result.delivery_to_stable == 1.0
        assert set(result.joined) <= schedule.joiners()
        assert set(result.departed) <= schedule.leavers()
        assert result.completion_time > 0

    def test_departed_members_stop_receiving(self, testbed):
        topology, router, ordering, source, dests = _setup(testbed, 15, 8)
        victim = dests[3]
        schedule = MembershipSchedule((MembershipEvent(1.0, "leave", victim),))
        churn = ChurnSimulator(
            topology, router, schedule=schedule, base_ordering=ordering
        )
        result = churn.run_churn(source, dests, 8, time_limit=20_000.0)
        assert result.stable_complete
        assert victim not in result.stable
        # Its gate dropped traffic after the leave.
        assert sum(result.dropped.values()) > 0 or len(
            result.delivered.get(victim, ())
        ) < 8


class TestRepairTrigger:
    def test_forwarding_leave_triggers_amend(self, testbed):
        """An early internal departure forces a repair re-multicast."""
        topology, router, ordering, source, dests = _setup(testbed, 15, 8)
        chain = chain_for(source, dests, ordering)
        tree = build_kbinomial_tree(chain, optimal_k(len(chain), 8))
        internal = next(n for n in chain[1:] if tree.children(n))
        schedule = MembershipSchedule((MembershipEvent(0.5, "leave", internal),))

        churn = ChurnSimulator(
            topology, router, schedule=schedule, base_ordering=ordering
        )
        result = churn.run_churn(source, dests, 8, time_limit=20_000.0)
        assert result.amends == 1
        assert result.disruption_windows and result.max_disruption > 0
        assert result.stable_complete

    def test_late_leaf_leave_costs_nothing(self, testbed):
        """A leaf departing after completion disrupts nobody."""
        topology, router, ordering, source, dests = _setup(testbed, 15, 4)
        chain = chain_for(source, dests, ordering)
        tree = build_kbinomial_tree(chain, optimal_k(len(chain), 4))
        base = MulticastSimulator(topology, router).run(tree, 4)
        leaf = next(n for n in chain[1:] if not tree.children(n))
        schedule = MembershipSchedule(
            (MembershipEvent(base.completion_time + 10.0, "leave", leaf),)
        )
        churn = ChurnSimulator(
            topology, router, schedule=schedule, base_ordering=ordering
        )
        result = churn.run_churn(source, dests, 4, time_limit=20_000.0)
        assert result.amends == 0
        assert result.stable_complete


class TestJoiners:
    def test_joiner_is_caught_up_with_staleness(self, testbed):
        topology, router, ordering, source, dests = _setup(testbed, 15, 4)
        members = {source, *dests}
        newcomer = next(h for h in ordering if h not in members)
        schedule = MembershipSchedule((MembershipEvent(5.0, "join", newcomer),))
        churn = ChurnSimulator(
            topology, router, schedule=schedule, base_ordering=ordering
        )
        result = churn.run_churn(source, dests, 4, time_limit=20_000.0)
        assert result.joined == (newcomer,)
        assert result.catch_ups == 1
        assert len(result.delivered.get(newcomer, ())) == 4
        assert result.joiner_staleness[newcomer] > 0
        assert result.mean_staleness == result.joiner_staleness[newcomer]
        assert result.stable_complete

    def test_rejoin_after_leave_heals_the_gate(self, testbed):
        topology, router, ordering, source, dests = _setup(testbed, 15, 8)
        victim = dests[5]
        schedule = MembershipSchedule(
            (
                MembershipEvent(1.0, "leave", victim),
                MembershipEvent(60.0, "rejoin", victim),
            )
        )
        churn = ChurnSimulator(
            topology, router, schedule=schedule, base_ordering=ordering
        )
        result = churn.run_churn(source, dests, 8, time_limit=20_000.0)
        # The rejoiner was caught up and ends with the full content.
        assert victim in result.joined
        assert len(result.delivered.get(victim, ())) == 8
        assert result.stable_complete


class TestValidation:
    def test_m_must_be_positive(self, testbed):
        topology, router, ordering, source, dests = _setup(testbed, 7, 2)
        churn = ChurnSimulator(topology, router, base_ordering=ordering)
        with pytest.raises(ValueError, match="m must be"):
            churn.run_churn(source, dests, 0)
