"""The ``amend`` wire type: fold, dedupe, fencing, routing (service tier)."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.service import (
    PlanClient,
    PlanRequest,
    PlanServer,
    PlanServiceError,
    SourceFailedError,
    StaleMapError,
    amend_remote,
    plan,
)

pytestmark = pytest.mark.service


def run(coro):
    return asyncio.run(coro)


async def started_server(**kwargs) -> PlanServer:
    server = PlanServer(port=0, **kwargs)
    await server.start()
    return server


class TestAmendWire:
    def test_amend_equals_cold_replan_over_the_wire(self):
        async def body():
            server = await started_server()
            async with await PlanClient.connect("127.0.0.1", server.port) as client:
                result = await client.amend(16, 4, exclude=(3,), join=2, leave=(5, 9))
            await server.shutdown()
            return result

        result = run(body())
        assert result == plan(PlanRequest(n=18, m=4, exclude=(3, 5, 9)))

    def test_response_echoes_the_amended_request(self):
        async def body():
            server = await started_server()
            reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
            writer.write(
                json.dumps(
                    {
                        "type": "amend",
                        "id": 1,
                        "n": 16,
                        "m": 4,
                        "delta": {"join": 1, "leave": [7]},
                    }
                ).encode()
                + b"\n"
            )
            await writer.drain()
            response = json.loads(await reader.readline())
            writer.close()
            await writer.wait_closed()
            await server.shutdown()
            return response

        response = run(body())
        assert response["ok"]
        assert response["amended"] == {"n": 17, "m": 4, "exclude": [7]}

    def test_source_leave_is_a_structured_error(self):
        async def body():
            server = await started_server()
            async with await PlanClient.connect("127.0.0.1", server.port) as client:
                with pytest.raises(SourceFailedError) as info:
                    await client.amend(16, 4, leave=(0,))
                errors = server.metrics.snapshot()["counters"]["errors"]
            await server.shutdown()
            return info.value, errors

        error, errors = run(body())
        assert error.code == "source_failed"
        assert "source" in error.message
        assert errors == 1

    @pytest.mark.parametrize(
        "payload, fragment",
        [
            ({"type": "amend", "n": 8, "m": 2}, "delta"),
            ({"type": "amend", "n": 8, "m": 2, "delta": 5}, "delta"),
            (
                {"type": "amend", "n": 8, "m": 2, "delta": {"evict": [1]}},
                "unknown delta fields",
            ),
            (
                {"type": "amend", "n": 8, "m": 2, "delta": {"leave": 3}},
                "delta.leave",
            ),
            (
                {"type": "amend", "n": 8, "m": 2, "delta": {"leave": [9]}},
                "outside",
            ),
        ],
    )
    def test_malformed_amends_are_bad_requests(self, payload, fragment):
        async def body():
            server = await started_server()
            reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
            writer.write(json.dumps(payload).encode() + b"\n")
            await writer.drain()
            response = json.loads(await reader.readline())
            writer.close()
            await writer.wait_closed()
            await server.shutdown()
            return response

        response = run(body())
        assert not response["ok"]
        assert response["error"]["code"] == "bad_request"
        assert fragment in response["error"]["message"]

    def test_amended_n_respects_max_n(self):
        async def body():
            server = await started_server(max_n=16)
            async with await PlanClient.connect("127.0.0.1", server.port) as client:
                with pytest.raises(PlanServiceError) as info:
                    await client.amend(16, 4, join=1)
            await server.shutdown()
            return info.value

        error = run(body())
        assert error.code == "bad_request" and "max_n" in error.message

    def test_epoch_fencing_applies_to_amend(self):
        async def body():
            server = await started_server(shard_id=0, ring_epoch=4)
            async with await PlanClient.connect("127.0.0.1", server.port) as client:
                with pytest.raises(StaleMapError) as info:
                    await client.amend(16, 4, join=1, epoch=3)
                current = await client.amend(16, 4, join=1, epoch=4)
            await server.shutdown()
            return info.value, current

        error, current = run(body())
        assert error.ring_epoch == 4
        assert current == plan(PlanRequest(n=17, m=4))


class TestChurnBurstCoalescing:
    def test_identical_amends_singleflight(self):
        """A flash crowd of equal deltas folds to one computation."""

        async def body():
            server = await started_server(max_delay=0.01)
            async with await PlanClient.connect("127.0.0.1", server.port) as client:
                results = await asyncio.gather(
                    *[client.amend(48, 8, join=3, leave=(7,)) for _ in range(16)]
                )
                counters = server.metrics.snapshot()["counters"]
            await server.shutdown()
            return results, counters

        results, counters = run(body())
        expected = plan(PlanRequest(n=51, m=8, exclude=(7,)))
        assert all(r == expected for r in results)
        assert counters["amends"] == 16
        assert counters["singleflight_hits"] >= 8

    def test_amends_counter_tracks_accepted_amends(self):
        async def body():
            server = await started_server()
            async with await PlanClient.connect("127.0.0.1", server.port) as client:
                await client.amend(16, 4, join=1)
                await client.plan(16, 4)
                counters = server.metrics.snapshot()["counters"]
            await server.shutdown()
            return counters

        counters = run(body())
        assert counters["amends"] == 1
        assert counters["requests"] == 2


class TestSyncWrapper:
    def test_amend_remote(self):
        """The sync wrapper runs in a worker thread with its own loop."""

        async def body():
            server = await started_server()
            result = await asyncio.get_running_loop().run_in_executor(
                None,
                lambda: amend_remote(
                    "127.0.0.1", server.port, 16, 4, join=2, leave=(5,)
                ),
            )
            await server.shutdown()
            return result

        assert run(body()) == plan(PlanRequest(n=18, m=4, exclude=(5,)))


class TestRouterForwarding:
    def _cluster(self):
        from repro.cluster import ClusterRouter, ShardSpec

        async def start():
            servers = []
            specs = []
            for sid in range(2):
                server = PlanServer(port=0, shard_id=sid)
                await server.start()
                servers.append(server)
                specs.append(
                    ShardSpec(shard_id=sid, host="127.0.0.1", port=server.port)
                )
            router = ClusterRouter(specs, port=0, probe_interval=5.0)
            await router.start()
            return servers, router

        return start

    def test_amend_routes_through_the_cluster(self):
        async def body():
            servers, router = await self._cluster()()
            async with await PlanClient.connect("127.0.0.1", router.port) as client:
                result = await client.amend(24, 4, join=2, leave=(5,))
                with pytest.raises(SourceFailedError):
                    await client.amend(24, 4, leave=(0,))
            shard_amends = []
            for server in servers:
                shard_amends.append(server.metrics.snapshot()["counters"]["amends"])
            await router.shutdown()
            for server in servers:
                await server.shutdown()
            return result, shard_amends

        result, shard_amends = run(body())
        assert result == plan(PlanRequest(n=26, m=4, exclude=(5,)))
        # Exactly one shard planned it (routed by the amended key) and
        # kept the amends accounting.
        assert sorted(shard_amends) == [0, 1]

    def test_equal_deltas_land_on_one_shard(self):
        """Routing by the *amended* key keeps dedupe locality: repeats
        of the same delta all walk to the same shard."""

        async def body():
            servers, router = await self._cluster()()
            async with await PlanClient.connect("127.0.0.1", router.port) as client:
                for _ in range(6):
                    await client.amend(24, 4, join=2, leave=(5,))
            shard_amends = [
                s.metrics.snapshot()["counters"]["amends"] for s in servers
            ]
            await router.shutdown()
            for server in servers:
                await server.shutdown()
            return shard_amends

        shard_amends = run(body())
        assert sorted(shard_amends) == [0, 6]
