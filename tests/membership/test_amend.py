"""Live plan amendment: the bit-identity-to-cold-replan contract.

The Hypothesis suite is the PR's acceptance property: for *any* legal
join/leave delta, ``amend_plan`` (with ``k_drift=0``) produces exactly
the chain, fan-out, and tree a cold re-plan over the new member set
would — under both ``REPRO_SURFACE`` modes — deltas compose, and the
empty delta is the identity.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import build_kbinomial_tree, optimal_k, surface_scope
from repro.faults import SourceFailedError
from repro.mcast import chain_for
from repro.membership import (
    MembershipDelta,
    amend_chain,
    amend_plan,
    amended_request,
    same_tree,
)
from repro.service import PlanRequest

BASE = [("host", i) for i in range(48)]


def _group(member_mask: int):
    """A member set from a bitmask over BASE (source = BASE[0], always in)."""
    members = [BASE[0]] + [BASE[i] for i in range(1, len(BASE)) if member_mask >> i & 1]
    outside = [h for h in BASE if h not in set(members)]
    return members, outside


# -- delta algebra ------------------------------------------------------------


class TestMembershipDelta:
    def test_overlap_rejected(self):
        with pytest.raises(ValueError, match="both join and leave"):
            MembershipDelta(joins=(BASE[1],), leaves=(BASE[1],))

    def test_value_semantics(self):
        a = MembershipDelta(joins=(BASE[2], BASE[1]), leaves=(BASE[3],))
        b = MembershipDelta(joins=(BASE[1], BASE[2], BASE[2]), leaves=(BASE[3],))
        assert a == b and hash(a) == hash(b)
        assert bool(a) and not bool(MembershipDelta())

    def test_later_events_win_in_composition(self):
        join_then_leave = MembershipDelta(joins=(BASE[1],)) + MembershipDelta(
            leaves=(BASE[1],)
        )
        assert not join_then_leave
        leave_then_rejoin = MembershipDelta(leaves=(BASE[2],)) + MembershipDelta(
            joins=(BASE[2],)
        )
        assert not leave_then_rejoin

    def test_apply_order_survivors_then_joins(self):
        delta = MembershipDelta(joins=(BASE[9],), leaves=(BASE[2],))
        assert delta.apply([BASE[0], BASE[2], BASE[4]]) == (BASE[0], BASE[4], BASE[9])


# -- validation ---------------------------------------------------------------


class TestValidation:
    def test_source_leave_refused(self):
        with pytest.raises(SourceFailedError):
            amend_chain(BASE[:4], MembershipDelta(leaves=(BASE[0],)), BASE)

    def test_unknown_leaver_refused(self):
        with pytest.raises(ValueError, match="not a group member"):
            amend_chain(BASE[:4], MembershipDelta(leaves=(BASE[9],)), BASE)

    def test_duplicate_joiner_refused(self):
        with pytest.raises(ValueError, match="already a group member"):
            amend_chain(BASE[:4], MembershipDelta(joins=(BASE[2],)), BASE)

    def test_joiner_outside_ordering_refused(self):
        with pytest.raises(ValueError, match="not in base ordering"):
            amend_chain(BASE[:4], MembershipDelta(joins=(("host", 99),)), BASE)

    def test_amend_plan_checks_chain_against_tree(self):
        tree = build_kbinomial_tree(BASE[:4], 2)
        with pytest.raises(ValueError, match="chain\\[0\\]"):
            amend_plan(tree, BASE[1:5], MembershipDelta(), 2, base_ordering=BASE)
        with pytest.raises(ValueError, match="missing tree nodes"):
            amend_plan(tree, BASE[:3], MembershipDelta(), 2, base_ordering=BASE)

    def test_everyone_leaves_but_the_source(self):
        tree = build_kbinomial_tree(BASE[:4], 2)
        plan = amend_plan(
            tree,
            BASE[:4],
            MembershipDelta(leaves=tuple(BASE[1:4])),
            2,
            base_ordering=BASE,
        )
        assert plan.chain == (BASE[0],)
        assert plan.total_steps == 0 and list(plan.tree.nodes()) == [BASE[0]]


# -- the property suite -------------------------------------------------------

deltas = st.tuples(
    st.integers(min_value=0, max_value=(1 << len(BASE)) - 1),  # member mask
    st.sets(st.integers(min_value=1, max_value=len(BASE) - 1), max_size=6),  # leaves
    st.sets(st.integers(min_value=1, max_value=len(BASE) - 1), max_size=6),  # joins
    st.integers(min_value=1, max_value=16),  # m
)


def _legal_delta(members, outside, leave_idx, join_idx):
    member_set = set(members)
    leaves = tuple(h for h in (BASE[i] for i in leave_idx) if h in member_set)
    joins = tuple(
        h for h in (BASE[i] for i in join_idx) if h not in member_set and h not in leaves
    )
    return MembershipDelta(joins=joins, leaves=leaves)


@settings(max_examples=60, deadline=None)
@given(case=deltas, surface=st.booleans())
def test_amend_is_bit_identical_to_cold_replan(case, surface):
    mask, leave_idx, join_idx, m = case
    members, outside = _group(mask | 0b10)  # at least one destination
    delta = _legal_delta(members, outside, leave_idx, join_idx)
    tree = build_kbinomial_tree(members, optimal_k(len(members), m))
    with surface_scope(surface):
        amended = amend_plan(tree, members, delta, m, base_ordering=BASE)
        cold_chain = chain_for(members[0], list(amended.chain[1:]), BASE)
        assert list(amended.chain) == list(cold_chain)
        if amended.n >= 2:
            assert amended.k == optimal_k(amended.n, m)
            assert same_tree(
                amended.tree, build_kbinomial_tree(list(cold_chain), amended.k)
            )
            assert not amended.k_stale


@settings(max_examples=60, deadline=None)
@given(case=deltas, second_leave=st.sets(st.integers(1, len(BASE) - 1), max_size=4))
def test_amend_composes(case, second_leave):
    mask, leave_idx, join_idx, m = case
    members, outside = _group(mask | 0b10)
    d1 = _legal_delta(members, outside, leave_idx, join_idx)
    after_d1 = list(d1.apply(members))
    d2 = _legal_delta(after_d1, None, second_leave, ())
    tree = build_kbinomial_tree(members, optimal_k(len(members), m))

    step1 = amend_plan(tree, members, d1, m, base_ordering=BASE)
    if step1.n < 2:
        return  # nothing left to amend further
    step2 = amend_plan(step1.tree, step1.chain, d2, m, base_ordering=BASE)
    fused = amend_plan(tree, members, d1 + d2, m, base_ordering=BASE)
    assert step2.chain == fused.chain
    assert step2.k == fused.k
    assert same_tree(step2.tree, fused.tree)


@settings(max_examples=30, deadline=None)
@given(mask=st.integers(min_value=2, max_value=(1 << len(BASE)) - 1), m=st.integers(1, 16))
def test_empty_delta_is_the_identity(mask, m):
    members, _ = _group(mask | 0b10)
    tree = build_kbinomial_tree(members, optimal_k(len(members), m))
    amended = amend_plan(tree, members, MembershipDelta(), m, base_ordering=BASE)
    assert list(amended.chain) == list(members)
    assert same_tree(amended.tree, tree)
    assert amended.step_overhead == 0
    assert not amended.departed and not amended.joined


# -- deferred re-optimization -------------------------------------------------


def test_k_drift_defers_reoptimization_and_marks_stale():
    members = BASE[:33]
    m = 8
    k0 = optimal_k(len(members), m)
    tree = build_kbinomial_tree(members, k0)
    delta = MembershipDelta(leaves=(members[5],))
    lazy = amend_plan(
        tree, members, delta, m, base_ordering=BASE, k_drift=0.5, epoch_k=k0
    )
    assert lazy.k == k0 and lazy.k_stale
    assert lazy.epoch_n == len(members)  # epoch not advanced
    eager = amend_plan(tree, members, delta, m, base_ordering=BASE)
    assert not eager.k_stale and eager.epoch_n == lazy.n


# -- the positional (service) twin -------------------------------------------


class TestAmendedRequest:
    def test_folds_join_and_leave(self):
        request = amended_request(16, 4, exclude=(3,), join=2, leave=(5, 9))
        assert request == PlanRequest(n=18, m=4, exclude=(3, 5, 9))

    def test_source_position_refused(self):
        with pytest.raises(SourceFailedError):
            amended_request(16, 4, leave=(0,))

    def test_leave_out_of_range_refused(self):
        with pytest.raises(ValueError, match="outside"):
            amended_request(16, 4, leave=(16,))

    def test_join_validation(self):
        with pytest.raises(ValueError, match="join"):
            amended_request(16, 4, join=-1)
        with pytest.raises(ValueError, match="join"):
            amended_request(16, 4, join=True)
