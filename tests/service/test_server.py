"""Plan server integration: real sockets, admission, drain (service tier).

Everything here runs against an in-process server bound to an
ephemeral port (``port=0``), with micro-batch windows of tens of
milliseconds, so the whole module stays well inside the tier-1 time
budget.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.params import MachineParams
from repro.service import (
    OverloadedError,
    PlanClient,
    PlanRequest,
    PlanServer,
    PlanServiceError,
    plan,
)

pytestmark = pytest.mark.service


def run(coro):
    return asyncio.run(coro)


async def started_server(**kwargs) -> PlanServer:
    server = PlanServer(port=0, **kwargs)
    await server.start()
    return server


class TestEndToEnd:
    def test_hundred_concurrent_mixed_requests(self):
        """The ISSUE's acceptance scenario, minus the overload half."""

        async def body():
            server = await started_server(workers=2, max_delay=0.01)
            # 40 duplicates of one hot key + 60 spread over 12 keys + 20
            # distinct: 120 concurrent requests, 33 unique.
            mix = (
                [(64, 8)] * 40
                + [(n, m) for n in (8, 16, 24, 32) for m in (1, 2, 4)] * 5
                + [(n, 5) for n in range(40, 60)]
            )
            client = await PlanClient.connect("127.0.0.1", server.port)
            results = await asyncio.gather(*[client.plan(n, m) for n, m in mix])
            stats = await client.stats()
            await client.close()
            await server.shutdown()
            return mix, results, stats

        mix, results, stats = run(body())
        assert len(results) == 120
        for (n, m), result in zip(mix, results):
            assert result == plan(PlanRequest(n=n, m=m))
        counters = stats["counters"]
        assert counters["plans"] == 120
        # Duplicates were answered from single-flight, observably.
        assert counters["planned"] < counters["plans"]
        assert counters["singleflight_hits"] > 0
        assert counters["shed"] == 0
        assert stats["plan_latency"]["count"] == 120
        assert stats["cache"]["plan_schedule"]["misses"] >= 1

    def test_custom_params_travel_the_wire(self):
        async def body():
            server = await started_server()
            params = MachineParams(t_s=1.0, t_r=2.0, t_step=1.0, t_sq=0.5, ports=2)
            async with await PlanClient.connect("127.0.0.1", server.port) as client:
                result = await client.plan(32, 4, params)
            await server.shutdown()
            return params, result

        params, result = run(body())
        assert result == plan(PlanRequest(n=32, m=4, params=params))

    def test_ping(self):
        async def body():
            server = await started_server()
            async with await PlanClient.connect("127.0.0.1", server.port) as client:
                alive = await client.ping()
            await server.shutdown()
            return alive

        assert run(body()) is True


class TestAdmissionControl:
    def test_burst_over_budget_is_shed_not_queued(self):
        async def body():
            # A long batch window parks admitted plans in flight, so a
            # burst larger than max_inflight must shed the excess.
            server = await started_server(max_inflight=4, max_delay=0.3)
            client = await PlanClient.connect("127.0.0.1", server.port)
            outcomes = await asyncio.gather(
                *[client.plan(10 + i, 2) for i in range(12)], return_exceptions=True
            )
            stats = await client.stats()
            await client.close()
            await server.shutdown()
            return outcomes, stats

        outcomes, stats = run(body())
        shed = [o for o in outcomes if isinstance(o, OverloadedError)]
        served = [o for o in outcomes if not isinstance(o, Exception)]
        assert len(shed) == 8
        assert len(served) == 4
        for result in served:
            assert result == plan(PlanRequest(n=result.n, m=2))
        assert stats["counters"]["shed"] == 8

    def test_oversized_n_rejected_at_the_boundary(self):
        async def body():
            server = await started_server(max_n=128)
            async with await PlanClient.connect("127.0.0.1", server.port) as client:
                with pytest.raises(PlanServiceError) as info:
                    await client.plan(129, 1)
            await server.shutdown()
            return info.value

        error = run(body())
        assert error.code == "bad_request"
        assert "max_n" in error.message

    def test_request_timeout_answers_timeout_error(self):
        async def body():
            server = await started_server(request_timeout=0.05, max_delay=0.3)
            async with await PlanClient.connect("127.0.0.1", server.port) as client:
                with pytest.raises(PlanServiceError) as info:
                    await client.plan(12, 2)
            await server.shutdown()
            return info.value

        assert run(body()).code == "timeout"


class TestBadRequests:
    @pytest.mark.parametrize(
        "payload,fragment",
        [
            ({"type": "plan", "m": 2}, "n must be"),
            ({"type": "plan", "n": 1, "m": 2}, "n must be"),
            ({"type": "plan", "n": 8, "m": 0}, "m must be"),
            ({"type": "plan", "n": 8, "m": 2, "params": {"t_sq": -1}}, "t_sq"),
            ({"type": "plan", "n": 8, "m": 2, "params": {"bogus": 1}}, "unknown params"),
            ({"type": "frobnicate"}, "unknown request type"),
            ({"n": 8, "m": 2}, "unknown request type"),
        ],
    )
    def test_validation_failures_return_bad_request(self, payload, fragment):
        async def body():
            server = await started_server()
            async with await PlanClient.connect("127.0.0.1", server.port) as client:
                response = await client.request(payload)
            await server.shutdown()
            return response

        response = run(body())
        assert response["ok"] is False
        assert response["error"]["code"] == "bad_request"
        assert fragment in response["error"]["message"]

    def test_invalid_json_line(self):
        async def body():
            server = await started_server()
            reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
            writer.write(b"this is not json\n")
            await writer.drain()
            line = await reader.readline()
            writer.close()
            await server.shutdown()
            return json.loads(line)

        response = run(body())
        assert response["ok"] is False
        assert response["error"]["code"] == "bad_request"


class TestGracefulShutdown:
    def test_drain_answers_inflight_requests(self):
        async def body():
            # Requests park in a 200 ms batch window; shutdown must
            # flush and answer them, not drop them.
            server = await started_server(max_delay=0.2)
            client = await PlanClient.connect("127.0.0.1", server.port)
            pending = [
                asyncio.ensure_future(client.plan(n, 3)) for n in (6, 12, 18, 24)
            ]
            await asyncio.sleep(0.05)  # all admitted, none answered yet
            assert not any(task.done() for task in pending)
            await server.shutdown(drain=True)
            results = await asyncio.gather(*pending)
            await client.close()
            return results

        results = run(body())
        assert [r.n for r in results] == [6, 12, 18, 24]
        for result in results:
            assert result == plan(PlanRequest(n=result.n, m=3))

    def test_shutdown_is_idempotent(self):
        async def body():
            server = await started_server()
            await server.shutdown()
            await server.shutdown()

        run(body())


class TestRequestSpans:
    def test_every_handled_line_gets_one_span(self):
        from repro.obs import Tracer

        tracer = Tracer()

        async def body():
            server = await started_server(tracer=tracer)
            client = await PlanClient.connect("127.0.0.1", server.port)
            await client.plan(16, 4)
            await client.ping()
            reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
            writer.write(b'{"type": "plan", "id": "bad", "n": 1, "m": 0}\n')
            await writer.drain()
            error = json.loads(await reader.readline())
            writer.close()
            await client.close()
            await server.shutdown()
            return error

        error = run(body())
        assert error["ok"] is False
        spans = [e for e in tracer.events if e.ph == "X"]
        assert [e.cat for e in spans] == ["service"] * 3
        assert sorted(e.name for e in spans) == ["ping", "plan", "plan"]
        assert any(e.name == "plan" and e.args["ok"] for e in spans)
        assert any(e.name == "ping" and e.args["ok"] for e in spans)
        # The failed request still got a span, carrying its id and outcome.
        failed = [e for e in spans if e.args["ok"] is False]
        assert len(failed) == 1 and failed[0].args["id"] == "bad"
        assert all(e.dur >= 0 for e in spans)

    def test_untraced_server_records_nothing(self):
        async def body():
            server = await started_server()
            client = await PlanClient.connect("127.0.0.1", server.port)
            await client.ping()
            await client.close()
            await server.shutdown()
            return server

        server = run(body())
        assert server.tracer is None


class TestObservatory:
    def test_metrics_wire_request_scrapes_prometheus_text(self):
        from repro.obs import parse_prometheus

        async def body():
            server = await started_server(workers=2)
            client = await PlanClient.connect("127.0.0.1", server.port)
            for n in (8, 16, 32):
                await client.plan(n, 4)
            raw = await client.request({"type": "metrics"})
            text = await client.metrics()
            await client.close()
            await server.shutdown()
            return raw, text

        raw, text = run(body())
        assert raw["ok"] is True
        assert raw["content_type"] == "text/plain; version=0.0.4"
        # Scrapes are live — the first one bumps the requests counter —
        # so both must parse, and the counters must move monotonically.
        first = parse_prometheus(raw["metrics"])
        second = parse_prometheus(text)
        counter = "repro_service_counters_requests_total"
        assert second[counter].samples[0][2] == first[counter].samples[0][2] + 1
        families = parse_prometheus(text)  # strict: the scrape must be legal
        by_name = {}
        for family in families.values():
            for name, labels, value in family.samples:
                if not labels:
                    by_name[name] = value
        assert by_name["repro_service_counters_plans_total"] == 3.0
        assert by_name["repro_service_plan_latency_us_count"] == 3.0
        # The server publishes its own gauges while alive.
        assert "repro_server_max_inflight" in by_name
        assert "repro_server_draining" in by_name

    def test_metrics_remote_sync_wrapper(self):
        from repro.service import metrics_remote

        # The sync wrapper spins its own event loop, so call it from a
        # worker thread while the server's loop keeps running here.
        async def scenario():
            server = await started_server()
            text = await asyncio.get_running_loop().run_in_executor(
                None, metrics_remote, "127.0.0.1", server.port
            )
            await server.shutdown()
            return text

        text = run(scenario())
        assert "# TYPE" in text and "repro_cache" in text

    def test_health_report_carries_metrics_and_slo(self):
        from repro.obs import SLOSet

        slos = SLOSet(clock=lambda: 0.0)

        async def body():
            server = await started_server(slos=slos)
            async with await PlanClient.connect("127.0.0.1", server.port) as client:
                await client.plan(16, 4)
                health = await client.health()
            await server.shutdown()
            return health

        health = run(body())
        assert health["status"] == "ok"
        assert "cache" in health["metrics"] and "service" in health["metrics"]
        slo_snap = health["slo"]["slos"]
        assert slo_snap["plan_latency_p99"]["total_good"] >= 1.0
        assert slo_snap["request_errors"]["total_good"] >= 1.0
        assert health["slo"]["alerts"] == 0

    def test_error_responses_burn_the_error_budget(self):
        from repro.obs import SLOSet

        slos = SLOSet(clock=lambda: 0.0)

        async def body():
            server = await started_server(slos=slos)
            async with await PlanClient.connect("127.0.0.1", server.port) as client:
                await client.request({"type": "plan", "n": 1, "m": 2})  # bad
                await client.plan(8, 2)  # good
            await server.shutdown()

        run(body())
        tracker = slos.trackers["request_errors"]
        assert tracker._total_bad == 1.0
        assert tracker._total_good == 1.0

    def test_server_profiler_lifecycle(self):
        from repro.obs import SamplingProfiler

        profiler = SamplingProfiler(hz=50.0, seed=0)

        async def body():
            server = await started_server(profiler=profiler)
            assert profiler._thread is not None  # started with the server
            async with await PlanClient.connect("127.0.0.1", server.port) as client:
                await client.plan(16, 4)
            await server.shutdown()

        run(body())
        assert profiler._thread is None  # stopped with the server
        assert profiler.snapshot()["elapsed_s"] > 0

    def test_default_server_uses_the_null_profiler(self):
        from repro.obs import NULL_PROFILER

        async def body():
            server = await started_server()
            await server.shutdown()
            return server

        server = run(body())
        assert server.profiler is NULL_PROFILER
        assert server.slos is None


class TestShardIdentity:
    """Satellite regression: health must name the shard it came from."""

    def test_health_carries_shard_id_epoch_and_recovery(self):
        async def body():
            server = await started_server(shard_id=3, ring_epoch=2)
            async with await PlanClient.connect("127.0.0.1", server.port) as client:
                health = await client.health()
            await server.shutdown()
            return health

        health = run(body())
        assert health["shard_id"] == 3
        assert health["ring_epoch"] == 2
        assert health["recovered_entries"] == 0  # no journal attached

    def test_plain_server_health_has_null_shard_identity(self):
        async def body():
            server = await started_server()
            async with await PlanClient.connect("127.0.0.1", server.port) as client:
                health = await client.health()
            await server.shutdown()
            return health

        health = run(body())
        assert health["shard_id"] is None
        assert health["ring_epoch"] == 0

    def test_shard_identified_metrics_carry_the_shard_label(self):
        from repro.obs import parse_prometheus

        async def body():
            server = await started_server(shard_id=5)
            async with await PlanClient.connect("127.0.0.1", server.port) as client:
                await client.plan(16, 4)
                text = await client.metrics()
            await server.shutdown()
            return text

        families = parse_prometheus(run(body()))
        labels = {
            labels.get("shard")
            for family in families.values()
            for _, labels, _ in family.samples
        }
        assert labels == {"5"}
        gauge = families["repro_server_shard_id"]
        assert gauge.samples[0][2] == 5.0
