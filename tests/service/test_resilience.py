"""Service resilience: retries, typed failures, health, fault injection.

Covers the failure-aware half of the service layer: the client's
:class:`RetryPolicy` backoff, typed errors for every transport failure
(connection refused is ``unavailable``, a blown deadline is
:class:`PlanTimeoutError` — never a raw ``OSError``), the server's
health endpoint and injectable fault mode, and ``exclude`` re-planning
over the wire.
"""

from __future__ import annotations

import asyncio
import socket

import pytest

from repro.service import (
    PlanClient,
    PlanRequest,
    PlanServer,
    PlanServiceError,
    PlanTimeoutError,
    RetryPolicy,
    plan,
)
from repro.service.client import RETRYABLE_CODES

pytestmark = pytest.mark.service


def run(coro):
    return asyncio.run(coro)


async def started_server(**kwargs) -> PlanServer:
    server = PlanServer(port=0, **kwargs)
    await server.start()
    return server


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


#: Fast backoff for tests: three attempts, sub-millisecond sleeps.
FAST_RETRY = RetryPolicy(attempts=3, base_delay=0.001, max_delay=0.01)


class TestRetryPolicy:
    def test_delays_are_deterministic_and_replayable(self):
        policy = RetryPolicy(attempts=5, seed=7)
        assert list(policy.delays()) == list(policy.delays())
        assert list(policy.delays()) != list(RetryPolicy(attempts=5, seed=8).delays())

    def test_delays_grow_and_stay_within_the_envelope(self):
        policy = RetryPolicy(
            attempts=6, base_delay=0.05, multiplier=2.0, max_delay=0.3, jitter=0.5
        )
        delays = list(policy.delays())
        assert len(delays) == 5  # one fewer than attempts
        for attempt, delay in enumerate(delays):
            raw = min(0.05 * 2.0**attempt, 0.3)
            # Jitter backs off the full delay, never extends it.
            assert raw * 0.5 <= delay <= raw

    def test_no_jitter_is_pure_exponential(self):
        delays = list(RetryPolicy(attempts=4, base_delay=0.1, jitter=0.0).delays())
        assert delays == [0.1, 0.2, 0.4]

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(attempts=0),
            dict(base_delay=-0.1),
            dict(multiplier=0.5),
            dict(jitter=1.5),
        ],
    )
    def test_invalid_policies_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_retryable_codes_cover_the_transient_failures(self):
        assert RETRYABLE_CODES == {"overloaded", "timeout", "unavailable"}


class TestTypedFailures:
    def test_connection_refused_is_unavailable_not_oserror(self):
        async def body():
            with pytest.raises(PlanServiceError) as info:
                await PlanClient.connect("127.0.0.1", free_port())
            return info.value

        error = run(body())
        assert not isinstance(error, OSError)
        assert error.code == "unavailable"
        assert error.code in RETRYABLE_CODES

    def test_client_deadline_raises_plan_timeout_error(self):
        async def body():
            # A long batch window parks the request past the deadline.
            server = await started_server(max_delay=0.5)
            async with await PlanClient.connect("127.0.0.1", server.port) as client:
                with pytest.raises(PlanTimeoutError) as info:
                    await client.plan(12, 2, timeout=0.05)
            await server.shutdown()
            return info.value

        assert run(body()).code == "timeout"


class TestHealthEndpoint:
    def test_healthy_server_reports_ok(self):
        async def body():
            server = await started_server(max_inflight=32)
            async with await PlanClient.connect("127.0.0.1", server.port) as client:
                health = await client.health()
            await server.shutdown()
            return health

        health = run(body())
        assert health["status"] == "ok"
        assert health["inflight"] == 0
        assert health["max_inflight"] == 32
        assert health["fault_mode"] is None

    def test_fault_mode_is_visible_in_health(self):
        async def body():
            server = await started_server()
            server.inject_fault("unavailable", count=3)
            async with await PlanClient.connect("127.0.0.1", server.port) as client:
                health = await client.health()
            await server.shutdown()
            return health

        assert run(body())["fault_mode"] == "unavailable"


class TestFaultInjection:
    def test_injected_faults_consume_then_clear(self):
        async def body():
            server = await started_server()
            server.inject_fault("unavailable", count=2)
            async with await PlanClient.connect("127.0.0.1", server.port) as client:
                failures = []
                for _ in range(2):
                    with pytest.raises(PlanServiceError) as info:
                        await client.plan(16, 4)
                    failures.append(info.value.code)
                result = await client.plan(16, 4)  # mode exhausted
            await server.shutdown()
            return failures, result

        failures, result = run(body())
        assert failures == ["unavailable", "unavailable"]
        assert result == plan(PlanRequest(n=16, m=4))

    def test_retry_rides_out_injected_faults(self):
        async def body():
            server = await started_server()
            server.inject_fault("unavailable", count=2)
            async with await PlanClient.connect("127.0.0.1", server.port) as client:
                result = await client.plan(16, 4, retry=FAST_RETRY)
            health = server.health_report()
            await server.shutdown()
            return result, health

        result, health = run(body())
        assert result == plan(PlanRequest(n=16, m=4))
        assert health["fault_mode"] is None  # both injected failures consumed

    def test_retry_gives_up_after_attempts(self):
        async def body():
            server = await started_server()
            server.inject_fault("overloaded", count=10)
            async with await PlanClient.connect("127.0.0.1", server.port) as client:
                with pytest.raises(PlanServiceError) as info:
                    await client.plan(16, 4, retry=FAST_RETRY)
            await server.shutdown()
            return info.value

        assert run(body()).code == "overloaded"

    def test_non_retryable_faults_fail_fast(self):
        async def body():
            server = await started_server()
            server.inject_fault("internal", count=1)
            async with await PlanClient.connect("127.0.0.1", server.port) as client:
                with pytest.raises(PlanServiceError) as info:
                    await client.plan(16, 4, retry=FAST_RETRY)
                result = await client.plan(16, 4)
            await server.shutdown()
            return info.value, result

        error, result = run(body())
        assert error.code == "internal"
        # Only the single injected fault was consumed: no blind retries.
        assert result == plan(PlanRequest(n=16, m=4))

    def test_injection_validates_arguments(self):
        server = PlanServer(port=0)
        with pytest.raises(ValueError, match="count"):
            server.inject_fault("unavailable", count=-1)
        with pytest.raises(ValueError, match="delay"):
            server.inject_fault("unavailable", delay=-1.0)

    def test_count_zero_clears_the_mode(self):
        server = PlanServer(port=0)
        server.inject_fault("unavailable", count=3)
        server.inject_fault("unavailable", count=0)
        assert server.health_report()["fault_mode"] is None


class TestExcludeOverTheWire:
    def test_exclude_matches_local_plan(self):
        async def body():
            server = await started_server()
            async with await PlanClient.connect("127.0.0.1", server.port) as client:
                result = await client.plan(16, 4, exclude=(3, 5))
            await server.shutdown()
            return result

        result = run(body())
        assert result == plan(PlanRequest(n=16, m=4, exclude=(3, 5)))
        assert result.excluded == (3, 5)
        scheduled = {row.node for row in result.schedule}
        assert scheduled == set(range(16)) - {3, 5}

    def test_invalid_exclude_is_a_bad_request(self):
        async def body():
            server = await started_server()
            async with await PlanClient.connect("127.0.0.1", server.port) as client:
                with pytest.raises(PlanServiceError) as info:
                    await client.plan(16, 4, exclude=(0,))  # the source
            await server.shutdown()
            return info.value

        assert run(body()).code == "bad_request"
