"""Request journaling and warm restart (service tier)."""

from __future__ import annotations

import asyncio

import pytest

from repro.params import MachineParams
from repro.service import PlanClient, PlanRequest, PlanServer, RequestJournal
from repro.service.planner import _schedule_rows

pytestmark = pytest.mark.service


def run(coro):
    return asyncio.run(coro)


class TestRequestJournal:
    def test_distinct_requests_append_once(self, tmp_path):
        journal = RequestJournal(tmp_path / "req.journal")
        a = PlanRequest(n=64, m=8)
        b = PlanRequest(n=32, m=4)
        assert journal.record(a) is True
        assert journal.record(a) is False  # duplicate: no second line
        assert journal.record(b) is True
        assert len((tmp_path / "req.journal").read_text().splitlines()) == 2

    def test_load_roundtrips_params_and_exclude(self, tmp_path):
        journal = RequestJournal(tmp_path / "req.journal")
        request = PlanRequest(
            n=16, m=2, params=MachineParams(t_s=1.0, ports=2), exclude=(3, 5)
        )
        journal.record(request)
        loaded, skipped = RequestJournal(tmp_path / "req.journal").load()
        assert skipped == 0
        assert loaded == [request]

    def test_corrupt_lines_skipped_not_fatal(self, tmp_path):
        path = tmp_path / "req.journal"
        journal = RequestJournal(path)
        journal.record(PlanRequest(n=64, m=8))
        with open(path, "a") as fh:
            fh.write("not json at all\n")
            fh.write('{"kind": "plan", "version": 1, "n": 8}\n')  # no CRC
        journal.record(PlanRequest(n=32, m=4))
        # Tamper the n=32 line: complete JSON, wrong checksum.
        raw = path.read_text().replace('"n":32', '"n":33')
        path.write_text(raw)

        fresh = RequestJournal(path)
        loaded, skipped = fresh.load()
        assert [r.n for r in loaded] == [64]
        assert skipped == 3

    def test_replay_warms_the_plan_memo(self, tmp_path):
        journal = RequestJournal(tmp_path / "req.journal")
        journal.record(PlanRequest(n=48, m=6))
        journal.record(PlanRequest(n=24, m=3))

        _schedule_rows.cache_clear()
        fresh = RequestJournal(tmp_path / "req.journal")
        assert fresh.replay() == 2
        assert fresh.recovered_entries == 2
        info = _schedule_rows.cache_info()
        assert info.currsize >= 1  # the memo is hot before any request

    def test_replay_marks_entries_seen(self, tmp_path):
        path = tmp_path / "req.journal"
        RequestJournal(path).record(PlanRequest(n=64, m=8))
        fresh = RequestJournal(path)
        fresh.replay()
        assert fresh.record(PlanRequest(n=64, m=8)) is False  # not re-journaled
        assert len(path.read_text().splitlines()) == 1


class TestWarmRestart:
    def test_server_journals_and_recovers(self, tmp_path):
        path = tmp_path / "req.journal"

        async def first_life():
            server = PlanServer(port=0, journal=RequestJournal(path))
            await server.start()
            async with await PlanClient.connect("127.0.0.1", server.port) as client:
                await client.plan(64, 8)
                await client.plan(64, 8)  # duplicate
                await client.plan(32, 4)
                health = (await client.request({"type": "health"}))["health"]
            await server.shutdown()
            return health

        async def second_life():
            server = PlanServer(port=0, journal=RequestJournal(path))
            await server.start()
            async with await PlanClient.connect("127.0.0.1", server.port) as client:
                health = (await client.request({"type": "health"}))["health"]
            await server.shutdown()
            return health

        health1 = run(first_life())
        assert health1["recovered_entries"] == 0
        health2 = run(second_life())
        assert health2["recovered_entries"] == 2

    def test_health_reports_zero_without_journal(self):
        async def body():
            server = PlanServer(port=0)
            await server.start()
            async with await PlanClient.connect("127.0.0.1", server.port) as client:
                health = (await client.request({"type": "health"}))["health"]
            await server.shutdown()
            return health

        assert run(body())["recovered_entries"] == 0

    def test_recovery_surfaces_in_durable_metrics(self, tmp_path):
        from repro.durable import DURABLE_METRICS
        from repro.obs import GLOBAL_METRICS

        path = tmp_path / "req.journal"
        RequestJournal(path).record(PlanRequest(n=16, m=2))
        before = DURABLE_METRICS.snapshot()["journal_entries_recovered"]
        RequestJournal(path).replay()
        snap = GLOBAL_METRICS.snapshot()
        assert snap["durable"]["journal_entries_recovered"] == before + 1
