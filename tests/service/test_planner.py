"""The plan function against direct core computations."""

from __future__ import annotations

import json

import pytest

from repro.core import (
    build_kbinomial_tree,
    cached_kbinomial_steps,
    fpfs_schedule,
    optimal_k,
    steps_needed,
)
from repro.params import MachineParams
from repro.service import PlanRequest, PlanResult, plan

GRID = [(n, m) for n in (2, 3, 8, 16, 31, 64) for m in (1, 2, 8, 32)]


class TestPlanMatchesCore:
    @pytest.mark.parametrize("n,m", GRID)
    def test_k_is_theorem_3(self, n, m):
        assert plan(PlanRequest(n=n, m=m)).k == optimal_k(n, m)

    @pytest.mark.parametrize("n,m", GRID)
    def test_schedule_matches_exact_fpfs(self, n, m):
        result = plan(PlanRequest(n=n, m=m))
        tree = build_kbinomial_tree(range(n), result.k)
        recv = fpfs_schedule(tree, m)
        for row in result.schedule:
            assert row.children == tree.children(row.node)
            assert row.first_recv == recv[(row.node, 0)]
            assert row.last_recv == recv[(row.node, m - 1)]
            assert row.child_first_send == tuple(recv[(c, 0)] for c in row.children)
        assert result.total_steps == max(recv.values())
        assert result.total_steps == cached_kbinomial_steps(n, result.k, m)

    @pytest.mark.parametrize("n,m", GRID)
    def test_theorem_2_breakdown(self, n, m):
        result = plan(PlanRequest(n=n, m=m))
        assert result.t1 == steps_needed(n, result.k)
        assert result.total_steps == result.t1 + result.pipeline_steps
        # Theorem 2's (m-1)·k term: exact on full trees, an upper
        # bound on partial ones (fan-outs never exceed k).
        assert result.pipeline_steps <= (m - 1) * result.k
        tree = build_kbinomial_tree(range(n), result.k)
        assert result.root_fanout == tree.root_fanout

    def test_cost_model_uses_machine_params(self):
        params = MachineParams(t_s=10.0, t_r=20.0, t_step=2.0, t_sq=3.0)
        result = plan(PlanRequest(n=16, m=4, params=params))
        assert result.latency_us == pytest.approx(10.0 + result.total_steps * 2.0 + 20.0)
        tree = build_kbinomial_tree(range(16), result.k)
        assert result.buffer_bound_us == pytest.approx(tree.max_fanout * 3.0)

    def test_multiport_shortens_schedule(self):
        one = plan(PlanRequest(n=32, m=8, params=MachineParams(ports=1)))
        two = plan(PlanRequest(n=32, m=8, params=MachineParams(ports=2)))
        assert two.total_steps <= one.total_steps

    def test_parent_links_consistent(self):
        result = plan(PlanRequest(n=31, m=4))
        rows = {row.node: row for row in result.schedule}
        assert rows[0].parent is None
        for row in result.schedule:
            for child in row.children:
                assert rows[child].parent == row.node


class TestWireFormat:
    def test_roundtrip_through_json(self):
        result = plan(PlanRequest(n=24, m=6))
        wire = json.loads(json.dumps(result.to_dict()))
        assert PlanResult.from_dict(wire) == result


class TestRequestValidation:
    @pytest.mark.parametrize("n", [1, 0, -3, 2.5, "64", True, None])
    def test_bad_n_rejected(self, n):
        with pytest.raises(ValueError):
            PlanRequest(n=n, m=1)

    @pytest.mark.parametrize("m", [0, -1, 1.5, "8", False, None])
    def test_bad_m_rejected(self, m):
        with pytest.raises(ValueError):
            PlanRequest(n=4, m=m)

    def test_bad_params_rejected(self):
        with pytest.raises(ValueError):
            PlanRequest(n=4, m=1, params={"t_s": 1.0})

    def test_requests_hash_by_value(self):
        a = PlanRequest(n=16, m=8)
        b = PlanRequest(n=16, m=8)
        assert a == b and hash(a) == hash(b)
        assert a != PlanRequest(n=16, m=8, params=MachineParams(t_sq=2.0))


class TestExclude:
    def test_plan_over_survivors_matches_reduced_n(self):
        full = plan(PlanRequest(n=6, m=2))
        reduced = plan(PlanRequest(n=8, m=2, exclude=(3, 5)))
        assert reduced.excluded == (3, 5)
        assert reduced.k == full.k
        assert reduced.t1 == full.t1
        assert reduced.total_steps == full.total_steps

    def test_rows_remap_onto_surviving_positions(self):
        result = plan(PlanRequest(n=8, m=2, exclude=(3, 5)))
        survivors = [0, 1, 2, 4, 6, 7]
        assert [row.node for row in result.schedule] == survivors
        for row in result.schedule:
            assert row.parent is None or row.parent in survivors
            assert all(child in survivors for child in row.children)

    def test_exclude_is_sorted_and_deduplicated(self):
        request = PlanRequest(n=8, m=2, exclude=(5, 3, 5))
        assert request.exclude == (3, 5)

    def test_exclude_round_trips_the_wire_format(self):
        result = plan(PlanRequest(n=8, m=2, exclude=(3, 5)))
        assert PlanResult.from_dict(json.loads(json.dumps(result.to_dict()))) == result

    @pytest.mark.parametrize(
        "exclude,fragment",
        [
            ((0,), "source"),
            ((8,), "outside"),
            ((-1,), "outside"),
            (("x",), "integers"),
            ((1, 2, 3, 4, 5, 6, 7), "leaves no destinations"),
        ],
    )
    def test_invalid_exclusions_rejected(self, exclude, fragment):
        with pytest.raises(ValueError, match=fragment):
            PlanRequest(n=8, m=2, exclude=exclude)
