"""PlanBatcher: single-flight dedupe, micro-batching, chunk fan-out."""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.service import PlanBatcher, PlanRequest, ServiceMetrics, plan
from repro.service.batching import plan_chunk


class CountingExecutor(ThreadPoolExecutor):
    """Thread pool that records every submitted chunk."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.chunks = []

    def submit(self, fn, *args, **kwargs):
        if args and fn is plan_chunk:
            self.chunks.append(args[0])
        return super().submit(fn, *args, **kwargs)


def run(coro):
    return asyncio.run(coro)


class TestSingleFlight:
    def test_duplicates_collapse_to_one_computation(self):
        async def body():
            metrics = ServiceMetrics()
            batcher = PlanBatcher(max_delay=0.01, metrics=metrics)
            request = PlanRequest(n=48, m=6)
            results = await asyncio.gather(*[batcher.submit(request) for _ in range(50)])
            await batcher.close()
            return metrics, results

        metrics, results = run(body())
        assert metrics.planned.value == 1
        assert metrics.singleflight_hits.value == 49
        assert all(r == results[0] for r in results)
        assert results[0] == plan(PlanRequest(n=48, m=6))

    def test_waiter_timeout_does_not_cancel_shared_flight(self):
        async def body():
            batcher = PlanBatcher(max_delay=0.05)
            request = PlanRequest(n=16, m=2)
            slow = asyncio.ensure_future(batcher.submit(request))
            await asyncio.sleep(0)  # let the key enter flight
            with pytest.raises(asyncio.TimeoutError):
                await asyncio.wait_for(batcher.submit(request), 0.001)
            result = await slow  # survivor still gets the answer
            await batcher.close()
            return result

        assert run(body()) == plan(PlanRequest(n=16, m=2))


class TestBatching:
    def test_full_batch_flushes_without_waiting(self):
        async def body():
            metrics = ServiceMetrics()
            batcher = PlanBatcher(max_batch=4, max_delay=5.0, metrics=metrics)
            requests = [PlanRequest(n=n, m=1) for n in (4, 5, 6, 7)]
            start = time.perf_counter()
            await asyncio.gather(*[batcher.submit(r) for r in requests])
            elapsed = time.perf_counter() - start
            await batcher.close()
            return metrics, elapsed

        metrics, elapsed = run(body())
        assert elapsed < 1.0  # did not sit out the 5 s window
        assert metrics.batches.value == 1
        assert metrics.snapshot()["batch"]["max_size"] == 4

    def test_distinct_keys_fan_out_in_sweep_chunks(self):
        async def body():
            executor = CountingExecutor(max_workers=2)
            batcher = PlanBatcher(
                max_batch=6, max_delay=5.0, chunk_size=2, executor=executor
            )
            requests = [PlanRequest(n=n, m=2) for n in (4, 6, 8, 10, 12, 14)]
            results = await asyncio.gather(*[batcher.submit(r) for r in requests])
            await batcher.close()
            return executor.chunks, requests, results

        chunks, requests, results = run(body())
        assert [len(c) for c in chunks] == [2, 2, 2]
        assert [r for chunk in chunks for r in chunk] == requests
        for request, result in zip(requests, results):
            assert result == plan(request)

    def test_results_follow_request_not_arrival_order(self):
        async def body():
            batcher = PlanBatcher(max_delay=0.005, workers=4)
            pairs = [(n, m) for n in (8, 16, 32, 64) for m in (1, 4, 16)]
            results = await asyncio.gather(
                *[batcher.submit(PlanRequest(n=n, m=m)) for n, m in pairs]
            )
            await batcher.close()
            return pairs, results

        pairs, results = run(body())
        for (n, m), result in zip(pairs, results):
            assert (result.n, result.m) == (n, m)


class TestFailureAndLifecycle:
    def test_plan_errors_reach_only_their_waiter(self, monkeypatch):
        real_plan = plan

        def exploding(request):
            if request.n == 13:
                raise RuntimeError("boom")
            return real_plan(request)

        monkeypatch.setattr("repro.service.batching.plan", exploding)

        async def body():
            batcher = PlanBatcher(max_delay=0.005)
            good = asyncio.ensure_future(batcher.submit(PlanRequest(n=12, m=1)))
            bad = asyncio.ensure_future(batcher.submit(PlanRequest(n=13, m=1)))
            with pytest.raises(RuntimeError, match="boom"):
                await bad
            result = await good
            await batcher.close()
            return result

        assert run(body()).n == 12

    def test_drain_flushes_immediately(self):
        async def body():
            batcher = PlanBatcher(max_delay=30.0)
            pending = asyncio.ensure_future(batcher.submit(PlanRequest(n=9, m=3)))
            await asyncio.sleep(0)
            start = time.perf_counter()
            await batcher.drain()
            elapsed = time.perf_counter() - start
            result = await pending
            await batcher.close()
            return elapsed, result

        elapsed, result = run(body())
        assert elapsed < 5.0  # did not wait out the 30 s window
        assert result == plan(PlanRequest(n=9, m=3))

    def test_submit_after_close_raises(self):
        async def body():
            batcher = PlanBatcher()
            await batcher.close()
            with pytest.raises(RuntimeError):
                await batcher.submit(PlanRequest(n=4, m=1))

        run(body())

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_batch": 0},
            {"max_delay": -0.1},
            {"workers": 0},
            {"chunk_size": 0},
        ],
    )
    def test_bad_configuration_rejected(self, kwargs):
        with pytest.raises(ValueError):
            PlanBatcher(**kwargs)
