"""Counters, latency histograms, and the cache-wired snapshot."""

from __future__ import annotations

import threading

import pytest

from repro.core import clear_caches
from repro.service import LatencyHistogram, PlanRequest, ServiceMetrics, plan
from repro.service.metrics import Counter


class TestCounter:
    def test_increments(self):
        counter = Counter()
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)

    def test_thread_safe_under_contention(self):
        counter = Counter()

        def spin():
            for _ in range(10_000):
                counter.inc()

        threads = [threading.Thread(target=spin) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 80_000


class TestLatencyHistogram:
    def test_empty_snapshot(self):
        snap = LatencyHistogram().snapshot()
        assert snap["count"] == 0
        assert snap["p50_us"] is None and snap["mean_us"] is None

    def test_quantile_bounds_the_sample(self):
        hist = LatencyHistogram()
        for us in (100, 200, 300, 400, 1000):
            hist.record(us / 1e6)
        p50 = hist.quantile(0.5)
        # Log buckets: the estimate is an upper bound within 2x.
        assert 200 <= p50 <= 512
        assert hist.quantile(0.99) >= 1000
        assert hist.count == 5

    def test_snapshot_fields(self):
        hist = LatencyHistogram()
        hist.record(0.001)  # 1000 us
        snap = hist.snapshot()
        assert snap["count"] == 1
        assert snap["mean_us"] == pytest.approx(1000.0)
        assert snap["min_us"] == snap["max_us"] == pytest.approx(1000.0)

    def test_rejects_negative_and_bad_quantile(self):
        hist = LatencyHistogram()
        with pytest.raises(ValueError):
            hist.record(-1.0)
        with pytest.raises(ValueError):
            hist.quantile(1.5)

    def test_overflow_bucket_reports_max(self):
        hist = LatencyHistogram(bounds_us=(1.0, 2.0))
        hist.record(5.0)  # 5 s, far past the last bound
        assert hist.quantile(0.99) == pytest.approx(5e6)


class TestServiceMetrics:
    def test_batch_observation(self):
        metrics = ServiceMetrics()
        metrics.observe_batch(3)
        metrics.observe_batch(5)
        batch = metrics.snapshot()["batch"]
        assert batch["count"] == 2
        assert batch["mean_size"] == pytest.approx(4.0)
        assert batch["max_size"] == 5
        with pytest.raises(ValueError):
            metrics.observe_batch(0)

    def test_snapshot_is_wired_to_core_cache(self):
        clear_caches()
        plan(PlanRequest(n=20, m=3))
        plan(PlanRequest(n=20, m=3))  # second call hits the schedule memo
        cache = ServiceMetrics().snapshot()["cache"]
        assert "plan_schedule" in cache
        assert cache["plan_schedule"]["hits"] >= 1
        assert 0.0 <= cache["plan_schedule"]["hit_rate"] <= 1.0
        # The core tables the planner leans on are visible too.
        assert {"optimal_k", "steps_needed", "build_kbinomial_tree"} <= set(cache)

    def test_snapshot_counters_section(self):
        metrics = ServiceMetrics()
        metrics.requests.inc(7)
        metrics.shed.inc()
        counters = metrics.snapshot()["counters"]
        assert counters["requests"] == 7
        assert counters["shed"] == 1
        assert set(counters) == {
            "requests",
            "plans",
            "amends",
            "planned",
            "singleflight_hits",
            "batches",
            "shed",
            "timeouts",
            "errors",
        }


class TestReset:
    def test_counter_reset(self):
        counter = Counter()
        counter.inc(5)
        counter.reset()
        assert counter.value == 0

    def test_histogram_reset_keeps_bounds(self):
        hist = LatencyHistogram(bounds_us=(1.0, 10.0, 100.0))
        hist.record(0.00005)
        hist.reset()
        assert hist.count == 0
        snap = hist.snapshot()
        assert snap["mean_us"] is None and snap["p99_us"] is None
        hist.record(0.00005)  # still usable after reset
        assert hist.count == 1

    def test_service_metrics_reset_zeroes_everything(self):
        metrics = ServiceMetrics()
        metrics.requests.inc(3)
        metrics.errors.inc()
        metrics.plan_latency.record(0.001)
        metrics.observe_batch(4)
        metrics.reset()
        snap = metrics.snapshot()
        assert all(v == 0 for v in snap["counters"].values())
        assert snap["plan_latency"]["count"] == 0
        assert snap["batch"] == {"count": 0, "mean_size": None, "max_size": 0}
