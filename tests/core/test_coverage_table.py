"""Vectorized coverage table vs the exact recursion."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import coverage, coverage_table


def test_shape_and_dtype():
    table = coverage_table(10, 4)
    assert table.shape == (11, 4)
    assert table.dtype == np.int64


def test_matches_recursion_dense():
    table = coverage_table(16, 6)
    for s in range(17):
        for k in range(1, 7):
            assert table[s, k - 1] == coverage(s, k)


@settings(max_examples=25)
@given(s_max=st.integers(min_value=0, max_value=30), k_max=st.integers(min_value=1, max_value=8))
def test_matches_recursion_random_corners(s_max, k_max):
    table = coverage_table(s_max, k_max)
    # Spot-check the corners and the diagonal.
    assert table[s_max, k_max - 1] == coverage(s_max, k_max)
    assert table[0, 0] == 1
    s_mid = s_max // 2
    assert table[s_mid, 0] == coverage(s_mid, 1)


def test_rows_monotone_in_k():
    table = coverage_table(20, 8)
    diffs = np.diff(table, axis=1)
    assert (diffs >= 0).all()


def test_columns_strictly_increasing_in_s():
    table = coverage_table(20, 8)
    diffs = np.diff(table, axis=0)
    assert (diffs > 0).all()


def test_validation():
    with pytest.raises(ValueError):
        coverage_table(-1, 3)
    with pytest.raises(ValueError):
        coverage_table(5, 0)
    with pytest.raises(ValueError):
        coverage_table(63, 2)
