"""De Coster et al. [2] host-packetization baseline model."""

from __future__ import annotations

import pytest

from repro.core import (
    decoster_latency,
    decoster_optimal_packet_size,
    min_k_binomial,
    multicast_latency_model,
    optimal_k,
    predicted_steps,
    steps_needed,
)
from repro.params import PAPER_PARAMS


def test_single_packet_case_uses_best_tree():
    # Message fits one packet: best k is the binomial (T1 = ceil(log2 n)).
    p = PAPER_PARAMS
    lat = decoster_latency(8, 64, 64, p)
    per_step = p.t_s + p.t_r + p.t_step
    assert lat == pytest.approx(3 * per_step)


def test_pipelining_uses_optimal_k():
    # m=8, n=64: best steps are 22 (k=2), not the binomial's 48.
    p = PAPER_PARAMS
    lat = decoster_latency(64, 512, 64, p)
    per_step = p.t_s + p.t_r + p.t_step
    assert lat == pytest.approx(22 * per_step)


def test_interior_packet_size_optimum_for_long_messages():
    # 64 KiB to 63 destinations: neither tiny packets (per-packet host
    # overhead) nor one giant packet (no pipelining) is best.
    p = PAPER_PARAMS
    size, _ = decoster_optimal_packet_size(64, 65536, p)
    assert 32 < size < 65536


def test_optimal_size_shifts_with_message_length():
    # The §1 critique: the tuned packet size depends on the workload,
    # which a fixed-packet network cannot accommodate.
    p = PAPER_PARAMS
    small, _ = decoster_optimal_packet_size(64, 256, p)
    large, _ = decoster_optimal_packet_size(64, 262144, p)
    assert small != large


def test_optimal_packet_size_matches_grid_minimum():
    p = PAPER_PARAMS
    grid = (64, 256, 1024, 4096)
    size, lat = decoster_optimal_packet_size(64, 4096, p, candidate_sizes=grid)
    values = {s: decoster_latency(64, 4096, s, p) for s in grid}
    assert lat == min(values.values()) and values[size] == lat


def test_smart_ni_wins_at_equal_packet_size():
    # Same fixed 64-byte packets: the smart NI drops t_s + t_r from
    # every pipeline step, so it wins for every (n, m).
    p = PAPER_PARAMS
    for n in (4, 16, 64):
        for nbytes in (64, 512, 2048):
            m = p.packets_for(nbytes)
            host = decoster_latency(n, nbytes, p.packet_bytes, p)
            steps = predicted_steps(n, optimal_k(n, m), m)
            smart = multicast_latency_model(steps, p)
            assert smart < host, (n, nbytes)


def test_host_scheme_step_count_matches_best_k():
    p = PAPER_PARAMS
    n, m = 32, 4
    best_steps = min(
        steps_needed(n, k) + (m - 1) * k for k in range(1, min_k_binomial(n) + 1)
    )
    per_step = p.t_s + p.t_r + p.t_step
    assert decoster_latency(n, m * 64, 64, p) == pytest.approx(best_steps * per_step)


def test_validation():
    p = PAPER_PARAMS
    with pytest.raises(ValueError):
        decoster_latency(1, 64, 64, p)
    with pytest.raises(ValueError):
        decoster_latency(8, 0, 64, p)
    with pytest.raises(ValueError):
        decoster_latency(8, 64, 0, p)
    with pytest.raises(ValueError):
        decoster_optimal_packet_size(8, 64, p, candidate_sizes=())
