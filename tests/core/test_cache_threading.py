"""core.cache under concurrent planner workers (service satellite).

The plan service computes through these memo tables from a thread
pool, while the metrics endpoint reads ``cache_stats()`` and tests
call ``clear_caches()`` — this module hammers all three concurrently
and then checks every cached value against a fresh serial computation.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.core import (
    build_kbinomial_tree,
    cache_stats,
    cached_kbinomial_steps,
    clear_caches,
    fpfs_total_steps,
    register_cache,
)

GRID = [
    (n, k, m)
    for n in range(2, 14)
    for k in range(1, 4)
    for m in (1, 3, 8)
]


def test_hammer_cached_kbinomial_steps_from_threads():
    clear_caches()
    errors = []
    barrier = threading.Barrier(10)
    stop = threading.Event()

    def worker(seed: int) -> None:
        rng = random.Random(seed)
        grid = GRID[:]
        rng.shuffle(grid)
        barrier.wait()
        try:
            for _ in range(3):
                for n, k, m in grid:
                    value = cached_kbinomial_steps(n, k, m)
                    expected = fpfs_total_steps(build_kbinomial_tree(range(n), k), m)
                    assert value == expected, (n, k, m)
        except Exception as exc:  # noqa: BLE001 - surfaced after join
            errors.append(exc)

    def churner() -> None:
        # Registry-wide operations racing the computing threads.
        barrier.wait()
        while not stop.is_set():
            stats = cache_stats()
            assert "kbinomial_steps" in stats
            clear_caches()

    def reader() -> None:
        barrier.wait()
        while not stop.is_set():
            for stats in cache_stats().values():
                assert stats.hits >= 0 and stats.misses >= 0

    workers = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
    extras = [threading.Thread(target=churner), threading.Thread(target=reader)]
    for thread in workers + extras:
        thread.start()
    for thread in workers:
        thread.join()
    stop.set()
    for thread in extras:
        thread.join()

    assert not errors, errors
    # The tables still work and count after the storm.
    clear_caches()
    assert cached_kbinomial_steps(8, 2, 4) == fpfs_total_steps(
        build_kbinomial_tree(range(8), 2), 4
    )
    assert cache_stats()["kbinomial_steps"].misses == 1


def test_register_cache_rejects_non_caches():
    with pytest.raises(TypeError):
        register_cache("bogus", lambda x: x)


def test_registered_cache_participates_in_stats_and_clear():
    from functools import lru_cache

    @lru_cache(maxsize=None)
    def doubler(x: int) -> int:
        return 2 * x

    register_cache("test_doubler", doubler)
    try:
        doubler(3)
        doubler(3)
        stats = cache_stats()["test_doubler"]
        assert (stats.hits, stats.misses) == (1, 1)
        clear_caches()
        assert cache_stats()["test_doubler"].misses == 0
    finally:
        # Registration replaces on re-register; drop our test entry.
        from repro.core import cache as cache_module

        with cache_module._REGISTRY_LOCK:
            cache_module._REGISTRY.pop("test_doubler", None)
