"""MulticastTree structure and the baseline constructions."""

from __future__ import annotations

import math

import pytest

from repro.core import (
    MulticastTree,
    build_binomial_tree,
    build_flat_tree,
    build_linear_tree,
)


class TestMulticastTree:
    def test_root_only(self):
        t = MulticastTree("r")
        assert len(t) == 1 and t.root == "r"
        assert t.destinations() == []
        assert t.root_fanout == 0 and t.max_fanout == 0

    def test_add_child_and_order(self):
        t = MulticastTree(0)
        t.add_child(0, 1)
        t.add_child(0, 2)
        assert t.children(0) == (1, 2)
        assert t.parent(1) == 0

    def test_add_child_unknown_parent(self):
        t = MulticastTree(0)
        with pytest.raises(KeyError):
            t.add_child(9, 1)

    def test_add_duplicate_child_rejected(self):
        t = MulticastTree(0)
        t.add_child(0, 1)
        with pytest.raises(ValueError):
            t.add_child(0, 1)

    def test_root_has_no_parent(self):
        t = MulticastTree(0)
        with pytest.raises(KeyError):
            t.parent(0)

    def test_nodes_depth_first_child_order(self):
        t = MulticastTree("r")
        t.add_child("r", "a")
        t.add_child("r", "b")
        t.add_child("a", "c")
        assert list(t.nodes()) == ["r", "a", "c", "b"]

    def test_edges(self):
        t = MulticastTree(0)
        t.add_child(0, 1)
        t.add_child(1, 2)
        assert list(t.edges()) == [(0, 1), (1, 2)]

    def test_contains(self):
        t = MulticastTree(0)
        t.add_child(0, 1)
        assert 1 in t and 2 not in t

    def test_depth_and_height(self):
        t = MulticastTree(0)
        t.add_child(0, 1)
        t.add_child(1, 2)
        t.add_child(0, 3)
        assert t.depth_of(2) == 2 and t.depth_of(3) == 1
        assert t.height == 2

    def test_subtree_size(self):
        t = MulticastTree(0)
        t.add_child(0, 1)
        t.add_child(1, 2)
        t.add_child(0, 3)
        assert t.subtree_size(0) == 4
        assert t.subtree_size(1) == 2
        assert t.subtree_size(3) == 1

    def test_validate_ok(self):
        t = MulticastTree(0)
        t.add_child(0, 1)
        t.validate()


class TestFirstPacketSteps:
    def test_linear_chain_steps(self):
        t = build_linear_tree(list(range(5)))
        steps = t.first_packet_steps()
        assert [steps[i] for i in range(5)] == [0, 1, 2, 3, 4]

    def test_children_receive_in_order(self):
        t = MulticastTree("r")
        for c in "abc":
            t.add_child("r", c)
        steps = t.first_packet_steps()
        assert (steps["a"], steps["b"], steps["c"]) == (1, 2, 3)

    def test_forwarding_starts_step_after_receive(self):
        t = MulticastTree(0)
        t.add_child(0, 1)
        t.add_child(1, 2)
        steps = t.first_packet_steps()
        assert steps[2] == 2


class TestLinearTree:
    def test_structure(self):
        t = build_linear_tree([3, 1, 4])
        assert t.children(3) == (1,) and t.children(1) == (4,)
        assert t.max_fanout == 1

    def test_empty_chain_rejected(self):
        with pytest.raises(ValueError):
            build_linear_tree([])

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            build_linear_tree([1, 1])


class TestBinomialTree:
    @pytest.mark.parametrize("n", [2, 3, 4, 5, 8, 13, 16, 31, 32, 48, 63, 64])
    def test_root_fanout_is_ceil_log2(self, n):
        t = build_binomial_tree(list(range(n)))
        assert t.root_fanout == math.ceil(math.log2(n))

    @pytest.mark.parametrize("n", [2, 3, 4, 5, 8, 13, 16, 31, 32, 48, 63, 64])
    def test_first_packet_within_ceil_log2_steps(self, n):
        t = build_binomial_tree(list(range(n)))
        assert max(t.first_packet_steps().values()) == math.ceil(math.log2(n))

    def test_covers_chain_exactly(self):
        chain = list(range(21))
        t = build_binomial_tree(chain)
        assert set(t.nodes()) == set(chain)

    def test_power_of_two_textbook_shape(self):
        t = build_binomial_tree(list(range(8)))
        # Textbook B_3: root fan-out 3, subtree sizes 4, 2, 1.
        sizes = [t.subtree_size(c) for c in t.children(t.root)]
        assert sizes == [4, 2, 1]

    def test_single_destination(self):
        t = build_binomial_tree([0, 1])
        assert t.children(0) == (1,)


class TestFlatTree:
    def test_source_sends_to_all(self):
        t = build_flat_tree(list(range(6)))
        assert t.root_fanout == 5
        assert all(t.fanout(c) == 0 for c in t.children(0))

    def test_first_packet_linear_in_n(self):
        t = build_flat_tree(list(range(6)))
        assert max(t.first_packet_steps().values()) == 5
