"""Property-based tests (hypothesis) on the core theory.

These lock the paper's structural invariants over randomized inputs:
coverage monotonicity, construction correctness for arbitrary (n, k),
FPFS schedule conservation, and consistency between the analytic model
and the exact scheduler.
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    build_binomial_tree,
    build_kbinomial_tree,
    check_chain_locality,
    check_covers,
    check_fanout_cap,
    coverage,
    fpfs_schedule,
    fpfs_total_steps,
    min_k_binomial,
    optimal_k,
    packet_completion_steps,
    predicted_steps,
    steps_needed,
)

ns = st.integers(min_value=2, max_value=128)
ks = st.integers(min_value=1, max_value=8)
ms = st.integers(min_value=1, max_value=12)


@given(s=st.integers(min_value=0, max_value=20), k=ks)
def test_coverage_positive_and_binomial_capped(s, k):
    n = coverage(s, k)
    assert 1 <= n <= 2**s


@given(s=st.integers(min_value=1, max_value=20), k=ks)
def test_coverage_strictly_increasing_in_s(s, k):
    assert coverage(s, k) > coverage(s - 1, k)


@given(s=st.integers(min_value=0, max_value=18), k=st.integers(min_value=1, max_value=7))
def test_coverage_nondecreasing_in_k(s, k):
    assert coverage(s, k + 1) >= coverage(s, k)


@given(n=ns, k=ks)
def test_steps_needed_is_minimal(n, k):
    t1 = steps_needed(n, k)
    assert coverage(t1, k) >= n
    if t1 > 0:
        assert coverage(t1 - 1, k) < n


@given(n=ns)
def test_binomial_k_coverage_identity(n):
    # For k >= ceil(log2 n) the tree is binomial: T1 == ceil(log2 n).
    k = min_k_binomial(n)
    assert steps_needed(n, k) == math.ceil(math.log2(n))


@settings(max_examples=60)
@given(n=ns, k=ks)
def test_construction_invariants(n, k):
    chain = list(range(n))
    tree = build_kbinomial_tree(chain, k)
    check_covers(tree, chain)
    check_fanout_cap(tree, k)
    check_chain_locality(tree, chain)
    # First packet within the T1 budget.
    assert max(tree.first_packet_steps().values()) <= steps_needed(n, k)


@settings(max_examples=40)
@given(n=st.integers(min_value=2, max_value=48), k=st.integers(min_value=1, max_value=6), m=ms)
def test_schedule_conservation(n, k, m):
    """Every node receives every packet exactly once, in order."""
    tree = build_kbinomial_tree(list(range(n)), k)
    schedule = fpfs_schedule(tree, m)
    assert len(schedule) == n * m
    for node in tree.destinations():
        arrivals = [schedule[(node, p)] for p in range(m)]
        assert arrivals == sorted(arrivals)
        assert len(set(arrivals)) == m
        # A node never receives before its parent (plus one step to forward).
        parent = tree.parent(node)
        for p in range(m):
            assert schedule[(node, p)] > schedule[(parent, p)]


@settings(max_examples=40)
@given(n=st.integers(min_value=2, max_value=48), k=st.integers(min_value=1, max_value=6), m=ms)
def test_exact_steps_never_exceed_theorem3_objective(n, k, m):
    tree = build_kbinomial_tree(list(range(n)), k)
    assert fpfs_total_steps(tree, m) <= predicted_steps(n, k, m)


@settings(max_examples=40)
@given(n=st.integers(min_value=2, max_value=48), m=ms)
def test_optimal_k_beats_binomial_and_linear(n, m):
    """The Theorem 3 tree is at least as fast as both baselines."""
    chain = list(range(n))
    opt_steps = fpfs_total_steps(build_kbinomial_tree(chain, optimal_k(n, m)), m)
    bin_steps = fpfs_total_steps(build_binomial_tree(chain), m)
    lin_steps = fpfs_total_steps(
        build_kbinomial_tree(chain, 1), m
    )
    assert opt_steps <= bin_steps
    assert opt_steps <= lin_steps


@settings(max_examples=30)
@given(n=st.integers(min_value=3, max_value=48), m=st.integers(min_value=2, max_value=12))
def test_completion_lag_bounded_by_max_fanout(n, m):
    """Packet completions are spaced by at most the max fan-out."""
    for k in (1, 2, 3):
        tree = build_kbinomial_tree(list(range(n)), k)
        completions = packet_completion_steps(tree, m)
        for a, b in zip(completions, completions[1:]):
            assert 1 <= b - a <= tree.max_fanout


@settings(max_examples=30)
@given(n=st.integers(min_value=2, max_value=64), m=st.integers(min_value=1, max_value=34))
def test_optimal_k_from_table_strategies(n, m):
    k = optimal_k(n, m)
    # Optimality: no other k in range does better under the objective.
    best = min(predicted_steps(n, kk, m) for kk in range(1, min_k_binomial(n) + 1))
    assert predicted_steps(n, k, m) == best


@settings(max_examples=30)
@given(
    chain=st.lists(st.integers(), min_size=2, max_size=40, unique=True),
    k=st.integers(min_value=1, max_value=6),
)
def test_construction_on_arbitrary_node_labels(chain, k):
    tree = build_kbinomial_tree(chain, k)
    assert set(tree.nodes()) == set(chain)
    assert tree.root == chain[0]


@settings(max_examples=40)
@given(n=st.integers(min_value=2, max_value=40), k=st.integers(min_value=1, max_value=5), m=ms)
def test_fcfs_schedule_conservation_and_dominance(n, k, m):
    """FCFS: complete, in-order, one send per node-step, never beats FPFS."""
    from collections import Counter

    from repro.core import fcfs_schedule, fcfs_total_steps

    tree = build_kbinomial_tree(list(range(n)), k)
    schedule = fcfs_schedule(tree, m)
    assert len(schedule) == n * m
    sends = Counter()
    for node in tree.destinations():
        arrivals = [schedule[(node, p)] for p in range(m)]
        assert arrivals == sorted(arrivals) and len(set(arrivals)) == m
        for p, step in enumerate(arrivals):
            sends[(tree.parent(node), step)] += 1
    assert all(count == 1 for count in sends.values())
    assert fcfs_total_steps(tree, m) >= fpfs_total_steps(tree, m)


@settings(max_examples=40)
@given(
    n=st.integers(min_value=2, max_value=40),
    k=st.integers(min_value=1, max_value=5),
    m=ms,
    ports=st.integers(min_value=1, max_value=4),
)
def test_multiport_schedule_dominance(n, k, m, ports):
    """More ports never slow the FPFS schedule; capacity is respected."""
    from collections import Counter

    tree = build_kbinomial_tree(list(range(n)), k)
    schedule = fpfs_schedule(tree, m, ports=ports)
    sends = Counter()
    for (child, p), step in schedule.items():
        if child != tree.root:
            sends[(tree.parent(child), step)] += 1
    assert all(count <= ports for count in sends.values())
    assert max(schedule.values()) <= fpfs_total_steps(tree, m, ports=1)
