"""ASCII tree rendering and stats."""

from __future__ import annotations

from repro.core import (
    MulticastTree,
    build_kbinomial_tree,
    build_linear_tree,
    render_tree,
    tree_stats,
)
from repro.network import host


def test_single_node():
    assert render_tree(MulticastTree("r"), show_steps=False) == "r"


def test_linear_chain_shape():
    out = render_tree(build_linear_tree([0, 1, 2]), show_steps=False)
    assert out.splitlines() == ["0", "└─ 1", "   └─ 2"]


def test_steps_annotation():
    out = render_tree(build_linear_tree([0, 1]))
    assert "[s0]" in out and "[s1]" in out


def test_branching_connectors():
    t = MulticastTree(0)
    t.add_child(0, 1)
    t.add_child(0, 2)
    lines = render_tree(t, show_steps=False).splitlines()
    assert lines[1].startswith("├─") and lines[2].startswith("└─")


def test_host_labels():
    t = build_linear_tree([host(3), host(7)])
    out = render_tree(t, show_steps=False)
    assert "H3" in out and "H7" in out


def test_custom_label():
    t = build_linear_tree([0, 1])
    out = render_tree(t, label=lambda n: f"node-{n}", show_steps=False)
    assert "node-0" in out and "node-1" in out


def test_every_node_appears_once():
    tree = build_kbinomial_tree(list(range(20)), 3)
    out = render_tree(tree, show_steps=False)
    assert len(out.splitlines()) == 20


def test_tree_stats():
    tree = build_kbinomial_tree(list(range(16)), 2)
    stats = tree_stats(tree)
    assert stats["nodes"] == 16
    assert stats["max_fanout"] <= 2
    assert stats["first_packet_steps"] == tree.height or stats["first_packet_steps"] >= tree.height
    assert stats["leaves"] >= 1
