"""Unit tests for the analytic surface engine (:mod:`repro.core.surface`).

The differential suite proves the tables bit-equal to the scalar
oracle; this file covers the machinery around them — build validation,
the installed-surface lifecycle (env gate, growth on miss, scoping),
persistence failure modes through the durable store, and the cache
integration (``clear_caches`` invalidation, ``cache_stats`` reporting,
and the stale-surface regression: a surface built under one machine
view must never serve another's exact lookups).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import (
    AnalyticSurface,
    active_surface,
    cache_stats,
    clear_caches,
    install_surface,
    installed_surface,
    optimal_k_exact,
    optimal_k_exact_scalar,
    optimal_k_scalar,
    surface_enabled,
    surface_scope,
    surface_stats,
    uninstall_surface,
)
from repro.core.surface import (
    DEFAULT_M_MAX,
    DEFAULT_N_MAX,
    MAX_N_MAX,
    surface_optimal_k,
    surface_optimal_k_exact,
    surface_steps_needed,
)
from repro.durable.errors import StoreCorruptionError, StoreVersionError, ValidationError
from repro.obs import GLOBAL_METRICS


@pytest.fixture(autouse=True)
def _pristine_surface_state(monkeypatch):
    """Each test starts with no installed surface and the gate unset."""
    monkeypatch.delenv("REPRO_SURFACE", raising=False)
    uninstall_surface()
    yield
    uninstall_surface()


# -- build validation --------------------------------------------------------


@pytest.mark.parametrize(
    "kwargs",
    [
        {"n_max": 1, "m_max": 4},
        {"n_max": 16, "m_max": 0},
        {"n_max": MAX_N_MAX * 2, "m_max": 4},
        {"n_max": 16, "m_max": 4, "exact": True, "ports": 0},
    ],
)
def test_build_rejects_bad_bounds(kwargs):
    with pytest.raises(ValidationError):
        AnalyticSurface.build(**kwargs)


def test_build_shapes_and_stats():
    surf = AnalyticSurface.build(64, 8)
    assert (surf.n_max, surf.m_max, surf.k_max) == (64, 8, 6)
    assert not surf.has_exact and surf.exact_ports is None
    stats = surf.stats()
    assert stats["table_entries"] == surf.table_entries > 0
    assert stats["build_seconds"] == surf.build_seconds >= 0.0
    # Lookups count as hits on the instance.
    before = surf.hits
    surf.optimal_k(10, 3)
    surf.steps_needed(10, 2)
    assert surf.hits == before + 2


def test_contains_and_grid_bounds():
    surf = AnalyticSurface.build(32, 4)
    assert surf.contains(2, 1) and surf.contains(32, 4)
    assert not surf.contains(1, 1) and not surf.contains(33, 1)
    assert not surf.contains(2, 5)
    grid = surf.optimal_k_grid([2, 10, 32], [1, 4])
    assert grid.shape == (3, 2)
    assert grid[1, 0] == optimal_k_scalar(10, 1)
    with pytest.raises(KeyError):
        surf.optimal_k_grid([2, 33], [1])
    with pytest.raises(KeyError):
        surf.optimal_k_grid([2], [5])
    with pytest.raises(ValidationError):
        surf.optimal_k_grid([], [1])


def test_latency_surface_shape_and_zero_rows():
    from repro.params import PAPER_MACHINE

    surf = AnalyticSurface.build(16, 4)
    grid = surf.latency_surface(PAPER_MACHINE)
    assert grid.shape == (17, 4)
    assert np.all(grid[:2, :] == 0.0)
    assert grid[16, 0] == surf.latency_us(16, 1, PAPER_MACHINE)


# -- persistence failure modes ----------------------------------------------


def test_save_embeds_manifest_and_loads_clean(tmp_path):
    surf = AnalyticSurface.build(24, 6)
    path = tmp_path / "surface.json"
    surf.save(path)
    doc = json.loads(path.read_text())
    assert doc["manifest"]["kind"] == "analytic_surface"
    assert doc["manifest"]["package"] == "repro"
    assert doc["version"] == 1
    loaded = AnalyticSurface.load(path)
    assert np.array_equal(loaded._optimal, surf._optimal)


def test_load_rejects_tampered_store(tmp_path):
    surf = AnalyticSurface.build(24, 6)
    path = tmp_path / "surface.json"
    surf.save(path)
    text = path.read_text()
    tampered = text.replace('"n_max": 24', '"n_max": 25', 1)
    assert tampered != text
    path.write_text(tampered)
    with pytest.raises(StoreCorruptionError):
        AnalyticSurface.load(path)


def test_load_rejects_wrong_version(tmp_path):
    from repro.durable.atomic import atomic_write_json

    surf = AnalyticSurface.build(8, 2)
    payload = surf.to_payload()
    payload["version"] = 99
    path = tmp_path / "surface.json"
    atomic_write_json(path, payload)
    with pytest.raises(StoreVersionError):
        AnalyticSurface.load(path)


def test_from_payload_rejects_missing_fields():
    surf = AnalyticSurface.build(8, 2)
    payload = surf.to_payload()
    del payload["steps"]
    with pytest.raises(ValidationError):
        AnalyticSurface.from_payload(payload)


# -- installed surface lifecycle ---------------------------------------------


def test_install_requires_a_surface():
    with pytest.raises(ValidationError):
        install_surface("not a surface")


def test_env_gate(monkeypatch):
    assert not surface_enabled()
    monkeypatch.setenv("REPRO_SURFACE", "0")
    assert not surface_enabled()
    assert active_surface(10, 2) is None  # gate off: scalar fallback
    monkeypatch.setenv("REPRO_SURFACE", "1")
    assert surface_enabled()


def test_dispatchers_install_and_grow(monkeypatch):
    monkeypatch.setenv("REPRO_SURFACE", "1")
    # First lookup auto-installs a default-bounds surface (one miss).
    assert surface_optimal_k(10, 3) == optimal_k_scalar(10, 3)
    surf = installed_surface()
    assert (surf.n_max, surf.m_max) == (DEFAULT_N_MAX, DEFAULT_M_MAX)
    assert surface_stats() == {"hits": 1, "misses": 1, "installed": surf.stats()}
    # A lookup past the horizon grows by doubling, preserving answers.
    assert surface_optimal_k(DEFAULT_N_MAX * 2 + 1, 3) == optimal_k_scalar(
        DEFAULT_N_MAX * 2 + 1, 3
    )
    grown = installed_surface()
    assert grown is not surf and grown.n_max == DEFAULT_N_MAX * 4
    assert grown.m_max == DEFAULT_M_MAX
    from repro.core import steps_needed

    assert surface_steps_needed(300, 2) == steps_needed(300, 2)
    assert surface_stats()["misses"] == 2


def test_surface_scope_restores_env_and_instance(monkeypatch):
    monkeypatch.setenv("REPRO_SURFACE", "0")
    outer = install_surface(AnalyticSurface.build(8, 2))
    inner = AnalyticSurface.build(16, 4)
    with surface_scope(inner) as active:
        assert active is inner and installed_surface() is inner
        assert surface_enabled()
    assert installed_surface() is outer
    assert not surface_enabled()
    with surface_scope(False):
        assert not surface_enabled()
    with surface_scope(True):
        assert surface_enabled()
        assert installed_surface() is outer
    # None leaves everything alone.
    with surface_scope(None) as active:
        assert active is outer


# -- cache integration (the satellite-4 regressions) -------------------------


def test_clear_caches_uninstalls_surface():
    """A cleared cache registry can never leave a stale surface serving."""
    install_surface(AnalyticSurface.build(16, 4))
    assert installed_surface() is not None
    clear_caches()
    assert installed_surface() is None
    assert surface_stats() == {"hits": 0, "misses": 0, "installed": None}


def test_cache_stats_reports_surface(monkeypatch):
    monkeypatch.setenv("REPRO_SURFACE", "1")
    clear_caches()
    surface_optimal_k(20, 4)
    surface_optimal_k(21, 4)
    stats = cache_stats()["surface"]
    assert stats.hits == 2 and stats.misses == 1
    assert stats.currsize == installed_surface().table_entries
    # The counters also flow into the global metrics snapshot.
    snapshot = GLOBAL_METRICS.snapshot()["cache"]["surface"]
    assert snapshot["hits"] == 2 and snapshot["misses"] == 1
    clear_caches()


def test_stale_surface_cannot_survive_machine_change(monkeypatch):
    """Exact tables built for one ports value never serve another.

    A MachineParams change (here: NI port count) must force the exact
    dispatcher back to the scalar oracle — the surface refuses with
    KeyError and the public wrapper recomputes, so the answer tracks
    the *new* machine even while the old surface stays installed.
    """
    monkeypatch.setenv("REPRO_SURFACE", "1")
    install_surface(AnalyticSurface.build(32, 8, exact=True, ports=2))
    # Served for the machine it was built for...
    assert surface_optimal_k_exact(24, 4, ports=2) == optimal_k_exact_scalar(24, 4, ports=2)
    # ...refused (None) for any other view, and the wrapper falls back.
    assert surface_optimal_k_exact(24, 4, ports=1) is None
    assert optimal_k_exact(24, 4, ports=1) == optimal_k_exact_scalar(24, 4, ports=1)
    assert surface_stats()["misses"] >= 1
    # Same refusal when the surface has no exact tables at all.
    install_surface(AnalyticSurface.build(32, 8))
    assert surface_optimal_k_exact(24, 4, ports=1) is None
    # And with nothing installed the dispatcher declines immediately.
    uninstall_surface()
    assert surface_optimal_k_exact(24, 4) is None


def test_latency_params_taken_per_call():
    """Paper tables are machine-free: latency reflects the params given now."""
    from repro.params import MachineParams

    surf = AnalyticSurface.build(32, 8)
    slow = MachineParams(t_s=10.0, t_r=10.0, t_step=4.0)
    fast = MachineParams(t_s=1.0, t_r=1.0, t_step=0.5)
    steps = surf.optimal_steps(20, 4)
    assert surf.latency_us(20, 4, slow) == 10.0 + steps * 4.0 + 10.0
    assert surf.latency_us(20, 4, fast) == 1.0 + steps * 0.5 + 1.0
