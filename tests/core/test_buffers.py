"""§3.3.2 buffer-requirement formulas."""

from __future__ import annotations

import pytest

from repro.core import compare_buffers, fcfs_buffer_time, fpfs_buffer_time


class TestFCFS:
    def test_paper_formula_multi_child(self):
        # ((p - i + 1) + (c - 2) p + i) * t_sq
        assert fcfs_buffer_time(children=3, packets=4, t_sq=1.0, i=2) == (4 - 2 + 1) + 1 * 4 + 2

    def test_independent_of_packet_index(self):
        # The i terms cancel: residency is the same for every packet.
        times = {fcfs_buffer_time(4, 8, 1.0, i=i) for i in range(1, 9)}
        assert len(times) == 1

    def test_linear_in_message_length(self):
        t1 = fcfs_buffer_time(3, 1)
        t2 = fcfs_buffer_time(3, 2)
        t4 = fcfs_buffer_time(3, 4)
        assert t4 - t2 == 2 * (t2 - t1)

    def test_single_child_case(self):
        # Only the remaining first-child sends keep the packet around.
        assert fcfs_buffer_time(1, 5, 1.0, i=2) == 4

    def test_scales_with_t_sq(self):
        assert fcfs_buffer_time(3, 4, t_sq=2.5) == 2.5 * fcfs_buffer_time(3, 4, t_sq=1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            fcfs_buffer_time(0, 4)
        with pytest.raises(ValueError):
            fcfs_buffer_time(2, 0)
        with pytest.raises(ValueError):
            fcfs_buffer_time(2, 4, t_sq=0)
        with pytest.raises(ValueError):
            fcfs_buffer_time(2, 4, i=5)


class TestFPFS:
    def test_paper_formula(self):
        assert fpfs_buffer_time(children=5, packets=100, t_sq=1.0) == 5

    def test_independent_of_message_length(self):
        assert fpfs_buffer_time(3, 1) == fpfs_buffer_time(3, 1000)


class TestComparison:
    @pytest.mark.parametrize("c", [1, 2, 3, 8])
    @pytest.mark.parametrize("p", [1, 2, 16, 64])
    def test_fpfs_never_needs_more_buffering(self, c, p):
        cmp = compare_buffers(c, p)
        assert cmp.fpfs <= cmp.fcfs

    def test_equal_only_for_single_packet_multi_child(self):
        # p = 1, c >= 2: T_c = ((c-2) + 2) = c = T_p.
        for c in (2, 3, 8):
            cmp = compare_buffers(c, 1)
            assert cmp.fcfs == cmp.fpfs

    def test_gap_grows_with_message_length(self):
        ratios = [compare_buffers(4, p).ratio for p in (1, 4, 16, 64)]
        assert ratios == sorted(ratios)
        assert ratios[-1] > 10

    def test_comparison_fields(self):
        cmp = compare_buffers(3, 4, t_sq=2.0)
        assert cmp.children == 3 and cmp.packets == 4 and cmp.t_sq == 2.0
