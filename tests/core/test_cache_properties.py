"""Property tests for the memoized model caches (:mod:`repro.core.cache`).

The caches are pure memoization: every wrapper must be extensionally
equal to its uncached original over randomized-but-seeded (n, k, m)
grids, counters must reset with :func:`clear_caches`, and Lemma 1's
coverage recurrence must hold identically on cold and warm caches.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

#: The autouse cache-clearing fixture is deliberately per-test, not
#: per-example; every @given body re-derives its own state anyway.
RELAXED = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)

from repro.core import (
    build_kbinomial_tree,
    cache_stats,
    cached_build_kbinomial_tree,
    cached_fpfs_total_steps,
    cached_kbinomial_steps,
    cached_steps_needed,
    clear_caches,
    coverage,
    fpfs_total_steps,
    min_k_binomial,
    steps_needed,
)


@pytest.fixture(autouse=True)
def _isolated_caches():
    """Each test starts and ends with empty caches and zero counters."""
    clear_caches()
    yield
    clear_caches()


def _seeded_grid(seed: int, count: int = 30):
    """Randomized-but-seeded (n, k, m) triples with k legal for n."""
    rng = random.Random(seed)
    triples = []
    for _ in range(count):
        n = rng.randint(2, 48)
        k = rng.randint(1, min_k_binomial(n))
        m = rng.randint(1, 12)
        triples.append((n, k, m))
    return triples


@RELAXED
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_cached_values_equal_uncached(seed):
    for n, k, m in _seeded_grid(seed):
        assert cached_steps_needed(n, k) == steps_needed(n, k)
        tree = cached_build_kbinomial_tree(range(n), k)
        reference = build_kbinomial_tree(list(range(n)), k)
        assert list(tree.edges()) == list(reference.edges())
        assert cached_fpfs_total_steps(tree, m) == fpfs_total_steps(reference, m)
        assert cached_kbinomial_steps(n, k, m) == fpfs_total_steps(reference, m)


def test_repeat_calls_hit_and_values_survive_clearing():
    grid = _seeded_grid(7, count=15)
    cold = [cached_kbinomial_steps(n, k, m) for n, k, m in grid]
    warm = [cached_kbinomial_steps(n, k, m) for n, k, m in grid]
    stats = cache_stats()["kbinomial_steps"]
    assert cold == warm
    assert stats.hits >= len(grid)  # the second pass was all hits
    assert 0 < stats.hit_rate < 1
    # Cache boundary: clearing must not change any value.
    clear_caches()
    assert [cached_kbinomial_steps(n, k, m) for n, k, m in grid] == cold


def test_cached_trees_are_shared_instances():
    a = cached_build_kbinomial_tree(range(9), 2)
    b = cached_build_kbinomial_tree(list(range(9)), 2)  # list vs range
    assert a is b  # canonicalized key -> one shared (immutable) tree
    # Identity keying makes the schedule wrapper hit on the shared tree.
    cached_fpfs_total_steps(a, 4)
    cached_fpfs_total_steps(b, 4)
    assert cache_stats()["fpfs_total_steps"].hits == 1


def test_clear_caches_resets_counters():
    cached_steps_needed(17, 2)
    cached_steps_needed(17, 2)
    cached_kbinomial_steps(17, 2, 3)
    before = cache_stats()
    assert before["steps_needed"].hits == 1
    assert before["steps_needed"].misses == 1
    assert before["kbinomial_steps"].calls == 1
    clear_caches()
    after = cache_stats()
    for name, stats in after.items():
        assert (stats.hits, stats.misses, stats.currsize) == (0, 0, 0), name
    assert after["steps_needed"].hit_rate == 0.0


@RELAXED
@given(
    s=st.integers(min_value=0, max_value=16),
    k=st.integers(min_value=1, max_value=8),
)
def test_lemma1_invariants_hold_at_cache_boundaries(s, k):
    """Lemma 1's N(s, k) recurrence, checked cold and warm."""

    def invariants():
        value = coverage(s, k)
        if s <= k:
            assert value == 2**s
        else:
            assert value == 1 + sum(coverage(s - i, k) for i in range(1, k + 1))
        if s > 0:
            assert value > coverage(s - 1, k)  # strictly growing in s
        # T1 consistency: steps_needed inverts coverage.
        n = value
        assert cached_steps_needed(n, k) == s or n == 1
        if n > 1:
            assert coverage(cached_steps_needed(n, k) - 1, k) < n
        return value

    cold = invariants()  # first call populates the coverage cache
    warm = invariants()  # second call is served from it
    assert cold == warm
    clear_caches()
    assert invariants() == cold  # identical after invalidation
