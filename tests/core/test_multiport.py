"""Multi-port extension of the FPFS step model."""

from __future__ import annotations

import pytest

from repro.core import (
    MulticastTree,
    build_binomial_tree,
    build_flat_tree,
    build_kbinomial_tree,
    build_linear_tree,
    fpfs_schedule,
    fpfs_total_steps,
)


def test_ports_validation():
    with pytest.raises(ValueError):
        fpfs_schedule(build_linear_tree([0, 1]), 1, ports=0)


def test_one_port_unchanged():
    # The default must be the paper's model: Fig. 5's counts hold.
    chain = list(range(4))
    assert fpfs_total_steps(build_binomial_tree(chain), 3, ports=1) == 6
    assert fpfs_total_steps(build_linear_tree(chain), 3, ports=1) == 5


def test_more_ports_never_slower():
    for n in (8, 16, 31):
        chain = list(range(n))
        for tree in (build_binomial_tree(chain), build_kbinomial_tree(chain, 2)):
            for m in (1, 4, 8):
                steps = [fpfs_total_steps(tree, m, ports=p) for p in (1, 2, 4)]
                assert steps[0] >= steps[1] >= steps[2]


def test_flat_tree_scales_inversely_with_ports():
    # n-1 sends per packet from one node: p ports divide the work.
    tree = build_flat_tree(list(range(9)))  # 8 destinations
    assert fpfs_total_steps(tree, 1, ports=1) == 8
    assert fpfs_total_steps(tree, 1, ports=2) == 4
    assert fpfs_total_steps(tree, 1, ports=4) == 2
    assert fpfs_total_steps(tree, 1, ports=8) == 1


def test_linear_tree_pipelines_packet_pairs_with_two_ports():
    # Parallel host links let the chain move 2 packets per step: the
    # single-packet time is unchanged, the pipeline tail halves.
    tree = build_linear_tree(list(range(6)))
    assert fpfs_total_steps(tree, 1, ports=2) == fpfs_total_steps(tree, 1, ports=1)
    m = 9
    one = fpfs_total_steps(tree, m, ports=1)  # 5 + 8 = 13
    two = fpfs_total_steps(tree, m, ports=2)  # 5 + ceil(8/2) = 9
    assert one == 13 and two == 9


def test_enough_ports_saturate():
    # Once ports cover the entire per-step demand, more change nothing.
    tree = build_kbinomial_tree(list(range(16)), 2)
    m = 4
    lots = fpfs_total_steps(tree, m, ports=64)
    more = fpfs_total_steps(tree, m, ports=256)
    assert lots == more
    # Saturated steps equal the tree height (every hop still costs a step).
    assert lots == tree.height


def test_binomial_benefits_more_than_kbinomial():
    # The binomial root's burst is what multi-port absorbs, so the
    # k-binomial advantage narrows as ports grow.
    chain = list(range(48))
    m = 16
    kbin = build_kbinomial_tree(chain, 2)
    bino = build_binomial_tree(chain)
    ratios = []
    for p in (1, 2, 4):
        ratios.append(
            fpfs_total_steps(bino, m, ports=p) / fpfs_total_steps(kbin, m, ports=p)
        )
    assert ratios[0] > ratios[1] > ratios[2]
    assert ratios[2] >= 1.0  # but k-binomial still never loses


def test_schedule_conservation_with_ports():
    tree = build_kbinomial_tree(list(range(20)), 3)
    schedule = fpfs_schedule(tree, 4, ports=2)
    assert len(schedule) == 20 * 4
    # At most 2 sends per (node, step).
    from collections import Counter

    sends = Counter()
    for (child, p), step in schedule.items():
        if child != tree.root:
            sends[(tree.parent(child), step)] += 1
    assert max(sends.values()) <= 2


def test_des_matches_step_model_with_ports():
    # Same exact cross-validation as the one-port suite, on 2 ports.
    from repro.mcast import MulticastSimulator
    from repro.network import Topology, UpDownRouter, host, switch
    from repro.params import SystemParams

    params = SystemParams(
        t_s=0.0, t_r=0.0, t_ns=1.0, t_nr=0.0, t_switch=0.0,
        link_bandwidth=64.0, packet_bytes=64,
    )
    topo = Topology()
    topo.add_switch(0)
    for i in range(12):
        topo.add_host(i, switch(0))
    router = UpDownRouter(topo)

    import random

    rng = random.Random(5)
    for _ in range(10):
        n = rng.randint(2, 12)
        tree = MulticastTree(host(0))
        for i in range(1, n):
            tree.add_child(host(rng.randrange(i)), host(i))
        m = rng.randint(1, 5)
        sim = MulticastSimulator(topo, router, params=params, ni_ports=2)
        des = sim.run(tree, m).completion_time
        assert des == pytest.approx(fpfs_total_steps(tree, m, ports=2) * 2.0)
