"""Theorem 3 optimal-k search and the §4.3.1 table."""

from __future__ import annotations

import pytest

from repro.core import (
    OptimalKTable,
    build_kbinomial_tree,
    fpfs_total_steps,
    linear_tree_steps,
    min_k_binomial,
    optimal_k,
    optimal_k_exact,
    predicted_steps,
)


class TestPredictedSteps:
    def test_formula(self):
        # n=64, k=2: T1=8, so 8 + (m-1)*2.
        assert predicted_steps(64, 2, 1) == 8
        assert predicted_steps(64, 2, 8) == 22

    def test_k1_equals_linear_tree(self):
        for n in (2, 5, 17):
            for m in (1, 3, 9):
                assert predicted_steps(n, 1, m) == linear_tree_steps(n, m)

    def test_trivial_set(self):
        assert predicted_steps(1, 3, 5) == 0

    def test_invalid_m(self):
        with pytest.raises(ValueError):
            predicted_steps(8, 2, 0)


class TestOptimalK:
    def test_single_packet_gives_binomial(self):
        # §5.1: "for m = 1, the optimal value of k = ceil(log2 n)".
        for n in (4, 16, 48, 64):
            assert optimal_k(n, 1) == min_k_binomial(n)

    def test_converges_to_small_k_for_long_messages(self):
        # §5.1: optimal k comes down as m grows.
        assert optimal_k(64, 8) == 2
        assert optimal_k(16, 32) == 1  # small sets cross to the linear tree

    def test_monotone_nonincreasing_in_m(self):
        for n in (16, 32, 48, 64):
            ks = [optimal_k(n, m) for m in range(1, 36)]
            assert all(a >= b for a, b in zip(ks, ks[1:])), (n, ks)

    def test_crossover_to_linear_happens_earlier_for_smaller_n(self):
        # §5.1: "the smaller the value of n, the smaller the value of m
        # at which T_L <= T_k".
        def first_linear_m(n):
            for m in range(1, 200):
                if optimal_k(n, m) == 1:
                    return m
            return None

        m16 = first_linear_m(16)
        m32 = first_linear_m(32)
        assert m16 is not None and m32 is not None and m16 < m32

    def test_never_exceeds_ceil_log2(self):
        for n in range(2, 65):
            for m in (1, 2, 8, 32):
                assert 1 <= optimal_k(n, m) <= min_k_binomial(n)

    def test_achieves_minimum_of_objective(self):
        for n in (7, 23, 64):
            for m in (1, 3, 8, 20):
                k_star = optimal_k(n, m)
                best = min(
                    predicted_steps(n, k, m) for k in range(1, min_k_binomial(n) + 1)
                )
                assert predicted_steps(n, k_star, m) == best

    def test_validation(self):
        with pytest.raises(ValueError):
            optimal_k(1, 4)
        with pytest.raises(ValueError):
            optimal_k(8, 0)


class TestOptimalKExact:
    def test_never_worse_than_paper_choice(self):
        for n in (5, 13, 33, 64):
            for m in (2, 4, 8):
                chain = list(range(n))
                paper_steps = fpfs_total_steps(
                    build_kbinomial_tree(chain, optimal_k(n, m)), m
                )
                exact_steps = fpfs_total_steps(
                    build_kbinomial_tree(chain, optimal_k_exact(n, m)), m
                )
                assert exact_steps <= paper_steps, (n, m)

    def test_matches_paper_on_full_trees(self):
        # When n = 2**s the constructed tree realizes the formula exactly,
        # so both searches agree on the achieved steps.
        for n in (16, 64):
            for m in (2, 8):
                chain = list(range(n))
                k_paper = optimal_k(n, m)
                k_exact = optimal_k_exact(n, m)
                s_paper = fpfs_total_steps(build_kbinomial_tree(chain, k_paper), m)
                s_exact = fpfs_total_steps(build_kbinomial_tree(chain, k_exact), m)
                assert s_paper == s_exact


class TestOptimalKTable:
    def test_lookup_matches_direct_computation(self):
        table = OptimalKTable(n_max=64, m_max=32)
        for n in (2, 9, 33, 64):
            for m in (1, 2, 5, 17, 32):
                assert table.lookup(n, m) == optimal_k(n, m)

    def test_compression_beats_dense_table(self):
        # §4.3.1/§5.1: optimal k is piecewise constant in m, so the
        # breakpoint encoding is far smaller than n_max * m_max.
        table = OptimalKTable(n_max=64, m_max=32)
        assert table.memory_entries < table.dense_entries / 4

    def test_lookup_beyond_m_max_clamps_to_tail(self):
        table = OptimalKTable(n_max=16, m_max=8)
        assert table.lookup(16, 100) == table.lookup(16, 8)

    def test_runs_are_strictly_decreasing_in_k(self):
        table = OptimalKTable(n_max=64, m_max=32)
        for n in (8, 32, 64):
            runs = table.runs_for(n)
            ks = [k for _, k in runs]
            assert ks == sorted(ks, reverse=True)
            assert len(set(ks)) == len(ks)

    def test_out_of_range_lookups(self):
        table = OptimalKTable(n_max=8, m_max=4)
        with pytest.raises(KeyError):
            table.lookup(9, 1)
        with pytest.raises(KeyError):
            table.lookup(8, 0)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            OptimalKTable(n_max=1, m_max=4)
        with pytest.raises(ValueError):
            OptimalKTable(n_max=4, m_max=0)
