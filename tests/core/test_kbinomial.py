"""Lemma 1, T1, and the Fig. 11 k-binomial construction."""

from __future__ import annotations

import pytest

from repro.core import (
    build_kbinomial_tree,
    check_chain_locality,
    check_covers,
    check_fanout_cap,
    check_kbinomial_depth,
    coverage,
    min_k_binomial,
    root_fanout,
    steps_needed,
)


class TestCoverage:
    def test_zero_steps_covers_only_source(self):
        assert coverage(0, 3) == 1

    def test_doubles_while_cap_unbinding(self):
        for s in range(0, 5):
            assert coverage(s, 5) == 2**s

    @pytest.mark.parametrize(
        "s,expected", [(3, 7), (4, 12), (5, 20), (6, 33), (7, 54), (8, 88)]
    )
    def test_k2_fibonacci_like_sequence(self, s, expected):
        assert coverage(s, 2) == expected

    def test_k1_is_linear(self):
        for s in range(10):
            assert coverage(s, 1) == s + 1

    def test_recurrence_holds_beyond_cap(self):
        k = 3
        for s in range(k + 1, 12):
            assert coverage(s, k) == 1 + sum(coverage(s - i, k) for i in range(1, k + 1))

    def test_monotone_in_s(self):
        for k in range(1, 6):
            values = [coverage(s, k) for s in range(12)]
            assert values == sorted(values)
            assert len(set(values)) == len(values)

    def test_monotone_in_k(self):
        for s in range(1, 12):
            values = [coverage(s, k) for k in range(1, 8)]
            assert values == sorted(values)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            coverage(-1, 2)
        with pytest.raises(ValueError):
            coverage(3, 0)


class TestStepsNeeded:
    def test_single_node_needs_zero_steps(self):
        assert steps_needed(1, 3) == 0

    def test_binomial_limit(self):
        # k >= ceil(log2 n): T1 = ceil(log2 n).
        assert steps_needed(64, 6) == 6
        assert steps_needed(64, 10) == 6

    def test_linear_limit(self):
        assert steps_needed(10, 1) == 9

    @pytest.mark.parametrize("n,k,expected", [(64, 2, 8), (64, 3, 7), (5, 2, 3), (7, 2, 3), (8, 2, 4)])
    def test_known_values(self, n, k, expected):
        assert steps_needed(n, k) == expected

    def test_t1_is_tight(self):
        for n in range(2, 100):
            for k in range(1, 7):
                t1 = steps_needed(n, k)
                assert coverage(t1, k) >= n
                assert coverage(t1 - 1, k) < n

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            steps_needed(0, 2)


class TestMinKBinomial:
    @pytest.mark.parametrize("n,expected", [(2, 1), (3, 2), (4, 2), (5, 3), (64, 6), (65, 7)])
    def test_ceil_log2(self, n, expected):
        assert min_k_binomial(n) == expected

    def test_single_node(self):
        assert min_k_binomial(1) == 0


class TestConstruction:
    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            build_kbinomial_tree([0, 1, 2], 0)

    def test_rejects_empty_chain(self):
        with pytest.raises(ValueError):
            build_kbinomial_tree([], 2)

    def test_rejects_duplicate_nodes(self):
        with pytest.raises(ValueError):
            build_kbinomial_tree([0, 1, 1], 2)

    def test_single_node_chain(self):
        tree = build_kbinomial_tree([42], 3)
        assert len(tree) == 1 and tree.root == 42

    def test_full_capacity_root_has_k_children(self):
        # n = N(s, k) exactly: the root uses all k child slots.
        for k in (2, 3, 4):
            s = k + 3
            n = coverage(s, k)
            tree = build_kbinomial_tree(list(range(n)), k)
            assert tree.root_fanout == k

    def test_all_invariants_across_n_and_k(self):
        for n in range(2, 65):
            chain = list(range(n))
            for k in range(1, min_k_binomial(n) + 1):
                tree = build_kbinomial_tree(chain, k)
                check_covers(tree, chain)
                check_fanout_cap(tree, k)
                check_kbinomial_depth(tree, k)
                check_chain_locality(tree, chain)

    def test_k1_is_the_linear_chain(self):
        chain = list(range(6))
        tree = build_kbinomial_tree(chain, 1)
        for parent, child in zip(chain, chain[1:]):
            assert tree.children(parent) == (child,)

    def test_large_k_is_binomial_shape(self):
        # Power-of-two set with k = log2 n: textbook binomial fan-outs.
        tree = build_kbinomial_tree(list(range(16)), 4)
        assert tree.root_fanout == 4
        fanouts = sorted(tree.fanout(node) for node in tree.nodes())
        # Binomial tree on 16 nodes: one node of each fan-out 0..4 pattern.
        assert max(fanouts) == 4 and fanouts.count(0) == 8

    def test_children_ordered_by_decreasing_subtree(self):
        # Fig. 11: first child covers the largest (rightmost) segment.
        tree = build_kbinomial_tree(list(range(33)), 2)
        sizes = [tree.subtree_size(c) for c in tree.children(tree.root)]
        assert sizes == sorted(sizes, reverse=True)

    def test_arbitrary_hashable_nodes(self):
        chain = [("host", i) for i in (9, 4, 7, 1)]
        tree = build_kbinomial_tree(chain, 2)
        assert set(tree.nodes()) == set(chain)
        assert tree.root == ("host", 9)


class TestRootFanout:
    def test_matches_constructed_tree(self):
        for n in range(2, 80):
            for k in range(1, min_k_binomial(n) + 1):
                tree = build_kbinomial_tree(list(range(n)), k)
                assert root_fanout(n, k) == tree.root_fanout, (n, k)

    def test_never_exceeds_k(self):
        for n in range(2, 80):
            for k in range(1, 8):
                assert root_fanout(n, k) <= k
