"""Exact FCFS step scheduler (§3.1 in the step model)."""

from __future__ import annotations

import pytest

from repro.core import (
    MulticastTree,
    build_binomial_tree,
    build_kbinomial_tree,
    build_linear_tree,
    fcfs_schedule,
    fcfs_total_steps,
    fpfs_total_steps,
)


def two_level_tree():
    # root -> a -> {b, c}: the FCFS penalty case (late children wait).
    t = MulticastTree("r")
    t.add_child("r", "a")
    t.add_child("a", "b")
    t.add_child("a", "c")
    return t


def test_m_must_be_positive():
    with pytest.raises(ValueError):
        fcfs_schedule(build_linear_tree([0, 1]), 0)


def test_single_packet_equals_fpfs():
    for n in (2, 5, 9, 16):
        chain = list(range(n))
        for tree in (build_binomial_tree(chain), build_kbinomial_tree(chain, 2)):
            assert fcfs_total_steps(tree, 1) == fpfs_total_steps(tree, 1)


def test_linear_tree_equals_fpfs():
    # Fan-out 1 everywhere: disciplines coincide for any m.
    tree = build_linear_tree(list(range(6)))
    for m in (1, 2, 5):
        assert fcfs_total_steps(tree, m) == fpfs_total_steps(tree, m)


def test_every_node_gets_every_packet():
    tree = build_kbinomial_tree(list(range(12)), 2)
    schedule = fcfs_schedule(tree, 4)
    assert len(schedule) == 12 * 4


def test_late_child_waits_for_whole_message():
    tree = two_level_tree()
    m = 3
    schedule = fcfs_schedule(tree, m)
    # "a" receives packets at steps 1..3 (source streams to its only
    # child); "b" (first child) gets cut-through copies; "c" gets
    # nothing until all three packets sit at "a".
    last_at_a = max(schedule[("a", p)] for p in range(m))
    first_at_c = min(schedule[("c", p)] for p in range(m))
    assert first_at_c > last_at_a


def test_fpfs_interleaves_where_fcfs_serializes():
    tree = two_level_tree()
    m = 3
    fcfs = fcfs_schedule(tree, m)
    from repro.core import fpfs_schedule

    fpfs = fpfs_schedule(tree, m)
    # First packet reaches the *last* child earlier under FPFS.
    assert fpfs[("c", 0)] < fcfs[("c", 0)]


def test_never_faster_than_fpfs():
    # FPFS's packet-major order dominates in the step model.
    for n in (4, 9, 16, 31):
        chain = list(range(n))
        for k in (2, 3):
            tree = build_kbinomial_tree(chain, k)
            for m in (2, 4, 8):
                assert fcfs_total_steps(tree, m) >= fpfs_total_steps(tree, m)


def test_one_send_per_node_per_step():
    tree = build_kbinomial_tree(list(range(16)), 3)
    schedule = fcfs_schedule(tree, 3)
    sends: dict = {}
    for (child, p), step in schedule.items():
        if child == tree.root:
            continue
        parent = tree.parent(child)
        key = (parent, step)
        assert key not in sends, f"{parent} sends twice in step {step}"
        sends[key] = (child, p)


def test_arrival_order_preserved_per_child():
    tree = build_kbinomial_tree(list(range(20)), 2)
    schedule = fcfs_schedule(tree, 5)
    for node in tree.destinations():
        arrivals = [schedule[(node, p)] for p in range(5)]
        assert arrivals == sorted(arrivals)
        assert len(set(arrivals)) == 5
