"""Property tests for the analytic surface (:mod:`repro.core.surface`).

The vectorized build leans on structural facts the closed forms only
imply; these tests pin each one directly, over hypothesis-drawn points:

* Lemma-1 coverage columns are *strictly* increasing in ``s`` (the
  precondition for ``searchsorted`` computing ``steps_needed``) and
  monotone non-decreasing in ``k``, with the exact boundary
  ``N(s, k) = 2**s`` whenever ``k >= s``.
* Out-of-bounds lookups raise :class:`KeyError`; in-bounds boundaries
  (``n = 2``, ``m = 1``, ``k`` past the last column) behave like the
  scalar oracle.
* Argmin tie-breaking reproduces the scalar searches exactly: the paper
  variant takes the *largest* minimizing ``k``, the exact variant the
  *smallest*.
* ``save`` → ``load`` round-trips every table bit-identically through
  the CRC-verified durable store.
* The pipeline prefix property the exact build exploits: one FPFS run
  at ``m_max`` packets yields the totals of every smaller ``m``.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    AnalyticSurface,
    build_kbinomial_tree,
    coverage,
    fpfs_total_steps,
    min_k_binomial,
    optimal_k_exact_scalar,
    optimal_k_scalar,
    predicted_steps,
    steps_needed,
)
from repro.core.surface import _exact_completion

RELAXED = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)

#: One shared read-only surface; every property draws points inside it.
N_MAX = 256
M_MAX = 48
SURFACE = AnalyticSurface.build(N_MAX, M_MAX)

ns = st.integers(min_value=2, max_value=N_MAX)
ms = st.integers(min_value=1, max_value=M_MAX)
ks = st.integers(min_value=1, max_value=SURFACE.k_max)


@RELAXED
@given(k=ks)
def test_coverage_columns_strictly_increase(k):
    """Strict monotonicity in s — what searchsorted correctness needs."""
    previous = None
    s = 0
    while True:
        try:
            value = SURFACE.coverage(s, k)
        except KeyError:
            break
        if previous is not None:
            assert value > previous, (s, k)
        previous = value
        s += 1
    assert s >= 2  # every column holds at least N(0,k)=1 and N(1,k)=2


@RELAXED
@given(s=st.integers(min_value=0, max_value=8), k=ks)
def test_coverage_monotone_in_k_with_power_boundary(s, k):
    """N(s, k) never shrinks as k grows, and saturates at 2**s for k >= s."""
    if k < SURFACE.k_max:
        assert SURFACE.coverage(s, k) <= SURFACE.coverage(s, k + 1), (s, k)
    if k >= s:
        assert SURFACE.coverage(s, k) == 2**s, (s, k)


@RELAXED
@given(n=ns, k=ks)
def test_boundaries_match_scalar(n, k):
    """Edges: n=1/n=2, m=1, and k clamped past the last column."""
    assert SURFACE.steps_needed(1, k) == steps_needed(1, k) == 0
    assert SURFACE.steps_needed(n, k + SURFACE.k_max) == steps_needed(n, k + SURFACE.k_max)
    assert SURFACE.optimal_k(2, 1) == optimal_k_scalar(2, 1) == 1
    assert SURFACE.optimal_k(n, 1) == optimal_k_scalar(n, 1)
    assert SURFACE.predicted_steps(n, k, 1) == SURFACE.steps_needed(n, k)


@RELAXED
@given(n=ns, m=ms)
def test_out_of_bounds_raises_keyerror(n, m):
    """Every lookup past the horizon fails loudly (the growth signal)."""
    assert not SURFACE.contains(N_MAX + n, m)
    with pytest.raises(KeyError):
        SURFACE.optimal_k(N_MAX + n, m)
    with pytest.raises(KeyError):
        SURFACE.optimal_k(n, M_MAX + m)
    with pytest.raises(KeyError):
        SURFACE.steps_needed(N_MAX + n, 1)
    with pytest.raises(KeyError):
        SURFACE.optimal_k(1, m)  # n < 2: nothing to plan


@RELAXED
@given(n=ns, m=ms)
def test_paper_tie_break_takes_largest_minimizer(n, m):
    """surface.optimal_k == max of the argmin set == the scalar search."""
    k_hi = min_k_binomial(n)
    objective = {k: predicted_steps(n, k, m) for k in range(1, k_hi + 1)}
    best = min(objective.values())
    winners = [k for k, v in objective.items() if v == best]
    chosen = SURFACE.optimal_k(n, m)
    assert chosen == max(winners), (n, m, winners)
    assert chosen == optimal_k_scalar(n, m), (n, m)
    assert SURFACE.optimal_steps(n, m) == best, (n, m)


@RELAXED
@given(n=st.integers(min_value=2, max_value=28), m=st.integers(min_value=1, max_value=8))
def test_exact_tie_break_takes_smallest_minimizer(n, m):
    """Exact variant: smallest minimizing k, matching the scalar `<` loop."""
    surf = AnalyticSurface.build(28, 8, exact=True)
    k_hi = min_k_binomial(n)
    objective = {
        k: fpfs_total_steps(build_kbinomial_tree(list(range(n)), k), m)
        for k in range(1, k_hi + 1)
    }
    best = min(objective.values())
    winners = [k for k, v in objective.items() if v == best]
    chosen = surf.optimal_k_exact(n, m)
    assert chosen == min(winners), (n, m, winners)
    assert chosen == optimal_k_exact_scalar(n, m), (n, m)


@RELAXED
@given(
    n_max=st.integers(min_value=2, max_value=64),
    m_max=st.integers(min_value=1, max_value=16),
    exact=st.booleans(),
    tag=st.integers(min_value=0, max_value=10**9),
)
def test_save_load_round_trips_bit_identically(n_max, m_max, exact, tag, tmp_path):
    """Persist through the CRC-stamped store and get every bit back."""
    surf = AnalyticSurface.build(n_max, m_max, exact=exact)
    path = tmp_path / f"surface-{tag}.json"
    surf.save(path)
    loaded = AnalyticSurface.load(path)
    assert loaded.n_max == surf.n_max and loaded.m_max == surf.m_max
    assert loaded.k_max == surf.k_max
    assert loaded.exact_ports == surf.exact_ports
    for a, b in zip(loaded._coverage_cols, surf._coverage_cols):
        assert np.array_equal(a, b)
    assert np.array_equal(loaded._steps, surf._steps)
    assert np.array_equal(loaded._optimal, surf._optimal)
    assert np.array_equal(loaded._best_steps, surf._best_steps)
    if exact:
        assert np.array_equal(loaded._exact_optimal, surf._exact_optimal)
        assert np.array_equal(loaded._exact_best_steps, surf._exact_best_steps)


@RELAXED
@given(
    n=st.integers(min_value=2, max_value=32),
    m_max=st.integers(min_value=1, max_value=10),
    ports=st.integers(min_value=1, max_value=2),
)
def test_pipeline_prefix_property(n, m_max, ports):
    """One FPFS run at m_max yields every smaller m's total exactly.

    This is the fact the exact build stands on: packets after ``p``
    never move ``p``'s receive schedule, so the running maximum of
    per-packet completions at ``m_max`` equals each standalone total.
    """
    for k in range(1, min_k_binomial(n) + 1):
        totals = _exact_completion(n, k, m_max, ports)
        tree = build_kbinomial_tree(list(range(n)), k)
        for m in range(1, m_max + 1):
            assert totals[m - 1] == fpfs_total_steps(tree, m, ports=ports), (n, k, m)
