"""Tree validators: they accept good trees and catch broken ones."""

from __future__ import annotations

import pytest

from repro.core import (
    MulticastTree,
    build_kbinomial_tree,
    check_chain_locality,
    check_covers,
    check_fanout_cap,
    check_kbinomial_depth,
)


@pytest.fixture
def good():
    chain = list(range(12))
    return build_kbinomial_tree(chain, 2), chain


def test_check_covers_accepts(good):
    tree, chain = good
    check_covers(tree, chain)


def test_check_covers_rejects_wrong_root(good):
    tree, chain = good
    with pytest.raises(ValueError, match="root"):
        check_covers(tree, [99] + chain[1:])


def test_check_covers_rejects_missing_node(good):
    tree, chain = good
    with pytest.raises(ValueError, match="coverage"):
        check_covers(tree, chain + [99])


def test_check_covers_rejects_extra_node(good):
    tree, chain = good
    with pytest.raises(ValueError, match="coverage"):
        check_covers(tree, chain[:-1])


def test_check_fanout_cap_accepts(good):
    tree, _ = good
    check_fanout_cap(tree, 2)


def test_check_fanout_cap_rejects(good):
    tree, _ = good
    with pytest.raises(ValueError, match="fan-out"):
        check_fanout_cap(tree, 1)


def test_check_depth_accepts(good):
    tree, _ = good
    check_kbinomial_depth(tree, 2)


def test_check_depth_rejects_linear_tree_as_binomial():
    from repro.core import build_linear_tree

    tree = build_linear_tree(list(range(8)))
    with pytest.raises(ValueError, match="steps"):
        check_kbinomial_depth(tree, 3)  # T1(8,3)=3 but chain takes 7


def test_chain_locality_accepts(good):
    tree, chain = good
    check_chain_locality(tree, chain)


def test_chain_locality_rejects_interleaved_subtrees():
    # Root sends to chain[2]; chain[2]'s subtree grabs chain[1] — not a
    # contiguous rightward segment.
    tree = MulticastTree(0)
    tree.add_child(0, 2)
    tree.add_child(2, 1)
    tree.add_child(0, 3)
    with pytest.raises(ValueError):
        check_chain_locality(tree, [0, 1, 2, 3])


def test_chain_locality_rejects_node_not_leftmost():
    # Subtree covers {1, 2} but its root is 2: 2 sends *leftward*.
    tree = MulticastTree(0)
    tree.add_child(0, 2)
    tree.add_child(2, 1)
    with pytest.raises(ValueError, match="leftmost"):
        check_chain_locality(tree, [0, 1, 2])
