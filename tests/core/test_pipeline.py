"""The pipelined step model: exact schedule vs Theorems 1 and 2."""

from __future__ import annotations

import pytest

from repro.core import (
    build_binomial_tree,
    build_flat_tree,
    build_kbinomial_tree,
    build_linear_tree,
    conventional_latency_model,
    coverage,
    fpfs_schedule,
    fpfs_total_steps,
    min_k_binomial,
    multicast_latency_model,
    packet_completion_steps,
    theorem2_steps,
)
from repro.params import SystemParams


class TestFig5:
    """§2.6's motivating example: 3 destinations, 3 packets."""

    def test_binomial_takes_6_steps(self):
        assert fpfs_total_steps(build_binomial_tree(list(range(4))), 3) == 6

    def test_linear_takes_5_steps(self):
        assert fpfs_total_steps(build_linear_tree(list(range(4))), 3) == 5

    def test_single_packet_binomial_beats_linear(self):
        b = fpfs_total_steps(build_binomial_tree(list(range(4))), 1)
        l = fpfs_total_steps(build_linear_tree(list(range(4))), 1)
        assert b == 2 and l == 3


class TestFig8:
    """7 destinations, binomial tree, 3 packets: 9 steps, lag 3."""

    def test_total_steps(self):
        tree = build_binomial_tree(list(range(8)))
        assert fpfs_total_steps(tree, 3) == 9

    def test_packet_lag_equals_root_fanout(self):
        tree = build_binomial_tree(list(range(8)))
        completions = packet_completion_steps(tree, 3)
        assert completions == [3, 6, 9]


class TestSchedule:
    def test_source_holds_all_packets_at_step_zero(self):
        tree = build_linear_tree([0, 1])
        schedule = fpfs_schedule(tree, 4)
        assert all(schedule[(0, p)] == 0 for p in range(4))

    def test_m_must_be_positive(self):
        with pytest.raises(ValueError):
            fpfs_schedule(build_linear_tree([0, 1]), 0)

    def test_every_node_gets_every_packet(self):
        tree = build_kbinomial_tree(list(range(20)), 3)
        schedule = fpfs_schedule(tree, 5)
        for node in tree.nodes():
            for p in range(5):
                assert (node, p) in schedule

    def test_packets_arrive_in_order_at_every_node(self):
        tree = build_kbinomial_tree(list(range(31)), 2)
        schedule = fpfs_schedule(tree, 6)
        for node in tree.destinations():
            arrivals = [schedule[(node, p)] for p in range(6)]
            assert arrivals == sorted(arrivals)
            assert len(set(arrivals)) == 6  # strictly increasing

    def test_one_send_per_node_per_step(self):
        tree = build_kbinomial_tree(list(range(16)), 3)
        schedule = fpfs_schedule(tree, 4)
        sends: dict = {}
        for (child, p), step in schedule.items():
            if child == tree.root:
                continue
            parent = tree.parent(child)
            key = (parent, step)
            assert key not in sends, f"{parent} sends twice in step {step}"
            sends[key] = (child, p)

    def test_trivial_tree(self):
        from repro.core import MulticastTree

        assert fpfs_total_steps(MulticastTree("solo"), 3) == 0

    def test_flat_tree_steps(self):
        # Separate addressing: root sends n-1 copies per packet.
        tree = build_flat_tree(list(range(5)))
        assert fpfs_total_steps(tree, 2) == 8  # 4 sends per packet, 2 packets


class TestTheorems:
    def test_theorem1_lag_on_kbinomial_full_trees(self):
        # On full k-binomial trees, successive completions differ by k_T.
        for k in (1, 2, 3, 4):
            n = coverage(k + 2, k)
            tree = build_kbinomial_tree(list(range(n)), k)
            completions = packet_completion_steps(tree, 5)
            lags = {b - a for a, b in zip(completions, completions[1:])}
            assert lags == {tree.root_fanout}, (k, completions)

    def test_theorem2_total_on_kbinomial_full_trees(self):
        for k in (1, 2, 3):
            for extra in (0, 1, 2, 3):
                s = k + extra
                n = coverage(s, k)
                tree = build_kbinomial_tree(list(range(n)), k)
                for m in (1, 2, 4, 7):
                    assert fpfs_total_steps(tree, m) == theorem2_steps(
                        s, m, tree.root_fanout
                    )

    def test_theorem2_formula_is_upper_bound_for_partial_trees(self):
        # With n < N(s, k), the constructed tree can beat T1 + (m-1)k
        # but never exceed it (fan-outs never exceed k).
        for n in range(2, 65):
            for k in range(1, min_k_binomial(n) + 1):
                tree = build_kbinomial_tree(list(range(n)), k)
                t1 = max(tree.first_packet_steps().values())
                for m in (2, 5):
                    exact = fpfs_total_steps(tree, m)
                    assert exact <= t1 + (m - 1) * k, (n, k, m)

    def test_theorem2_steps_validation(self):
        with pytest.raises(ValueError):
            theorem2_steps(3, 0, 2)
        with pytest.raises(ValueError):
            theorem2_steps(3, 2, 0)
        assert theorem2_steps(3, 1, 0) == 3  # single packet needs no pipeline


class TestLatencyModels:
    def test_smart_latency_formula(self):
        p = SystemParams(t_s=10, t_r=20, t_ns=1, t_nr=1, t_switch=0, link_bandwidth=64, packet_bytes=64)
        # t_step = 1 + 0 + 1 + 1 = 3.
        assert multicast_latency_model(5, p) == 10 + 5 * 3 + 20

    def test_conventional_single_packet_matches_paper_formula(self):
        # §2.5: ceil(log2 n) * (t_step + t_s + t_r).
        p = SystemParams()
        import math

        for n in (2, 4, 8, 64):
            expected = math.ceil(math.log2(n)) * (p.t_step + p.t_s + p.t_r)
            assert conventional_latency_model(n, 1, p) == pytest.approx(expected)

    def test_conventional_scales_with_message_length(self):
        p = SystemParams()
        assert conventional_latency_model(8, 4, p) > conventional_latency_model(8, 1, p)

    def test_conventional_validation(self):
        p = SystemParams()
        with pytest.raises(ValueError):
            conventional_latency_model(0, 1, p)
        with pytest.raises(ValueError):
            conventional_latency_model(4, 0, p)

    def test_smart_beats_conventional_single_packet(self):
        # §2.5's whole point.
        p = SystemParams()
        for n in (4, 16, 64):
            smart = multicast_latency_model(
                __import__("math").ceil(__import__("math").log2(n)), p
            )
            conventional = conventional_latency_model(n, 1, p)
            assert smart < conventional
