"""Trace and LevelMonitor."""

from __future__ import annotations

import pytest

from repro.sim import LevelMonitor, Trace


def test_trace_records_time_and_fields(env):
    tr = Trace(env)

    def proc(env):
        yield env.timeout(2)
        tr.log("send", src=1, dst=2)

    env.process(proc(env))
    env.run()
    [rec] = tr.records
    assert rec.time == 2 and rec.category == "send" and rec["src"] == 1


def test_trace_disabled_records_nothing(env):
    tr = Trace(env, enabled=False)
    tr.log("send", src=1)
    assert tr.records == []


def test_trace_select_filters_by_fields(env):
    tr = Trace(env)
    tr.log("send", dst=1)
    tr.log("send", dst=2)
    tr.log("recv", dst=1)
    assert tr.count("send") == 2
    assert tr.count("send", dst=1) == 1
    assert tr.count("recv", dst=2) == 0


def test_trace_last_time(env):
    tr = Trace(env)

    def proc(env):
        tr.log("tick")
        yield env.timeout(5)
        tr.log("tick")

    env.process(proc(env))
    env.run()
    assert tr.last_time("tick") == 5
    assert tr.last_time("missing") is None


def test_trace_clear(env):
    tr = Trace(env)
    tr.log("x")
    tr.clear()
    assert tr.records == []


def test_level_monitor_peak(env):
    mon = LevelMonitor(env)

    def proc(env):
        mon.change(+2)
        yield env.timeout(1)
        mon.change(+3)
        yield env.timeout(1)
        mon.change(-4)

    env.process(proc(env))
    env.run()
    assert mon.peak == 5
    assert mon.level == 1


def test_level_monitor_negative_level_rejected(env):
    mon = LevelMonitor(env)
    with pytest.raises(ValueError):
        mon.change(-1)


def test_level_monitor_time_average(env):
    mon = LevelMonitor(env)

    def proc(env):
        mon.change(+4)          # level 4 during [0, 2)
        yield env.timeout(2)
        mon.change(-2)          # level 2 during [2, 4)
        yield env.timeout(2)
        mon.finalize()

    env.process(proc(env))
    env.run()
    assert mon.time_average == pytest.approx((4 * 2 + 2 * 2) / 4)


def test_level_monitor_zero_duration_average(env):
    mon = LevelMonitor(env)
    assert mon.time_average == 0.0


def test_level_monitor_created_mid_simulation(env):
    """Regression: the averaging window starts at creation, not t=0.

    A monitor born at t=10 that holds level 4 for 2 time units must
    average 4.0 — dividing by ``end`` instead of ``end - start`` used
    to dilute it to 8/12.
    """
    holder = {}

    def proc(env):
        yield env.timeout(10)
        mon = holder["mon"] = LevelMonitor(env)
        mon.change(+4)
        yield env.timeout(2)
        mon.finalize()

    env.process(proc(env))
    env.run()
    assert holder["mon"].time_average == pytest.approx(4.0)


def test_trace_select_uses_category_index(env):
    tr = Trace(env)
    tr.log("send", dst=1)
    tr.log("recv", dst=1)
    tr.log("send", dst=2)
    # The category buckets partition the flat log.
    assert [r.category for r in tr.records] == ["send", "recv", "send"]
    assert [r["dst"] for r in tr.select("send")] == [1, 2]
    assert list(tr.select("drop")) == []
    tr.clear()
    assert tr.count("send") == 0 and list(tr.select("send")) == []


def test_trace_last_time_scans_only_its_category(env):
    tr = Trace(env)

    def proc(env):
        tr.log("tick", n=1)
        yield env.timeout(3)
        tr.log("tock", n=1)
        yield env.timeout(4)
        tr.log("tick", n=2)

    env.process(proc(env))
    env.run()
    assert tr.last_time("tick") == 7
    assert tr.last_time("tick", n=1) == 0
    assert tr.last_time("tock") == 3
