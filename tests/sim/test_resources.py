"""Resource and PriorityResource semantics."""

from __future__ import annotations

import pytest

from repro.sim import InvalidEventUsage, PriorityResource, Resource


def hold(env, res, log, tag, duration):
    with res.request() as req:
        yield req
        log.append((env.now, tag, "acquired"))
        yield env.timeout(duration)
    log.append((env.now, tag, "released"))


def test_capacity_must_be_positive(env):
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_immediate_grant_when_free(env):
    res = Resource(env)
    req = res.request()
    assert req.triggered
    assert res.count == 1


def test_fifo_service_order(env):
    res = Resource(env, capacity=1)
    log = []
    for tag in "abc":
        env.process(hold(env, res, log, tag, 2))
    env.run()
    acquired = [t for (_, t, what) in log if what == "acquired"]
    assert acquired == ["a", "b", "c"]


def test_capacity_two_allows_two_holders(env):
    res = Resource(env, capacity=2)
    log = []
    for tag in "abc":
        env.process(hold(env, res, log, tag, 2))
    env.run()
    times = {t: at for (at, t, what) in log if what == "acquired"}
    assert times["a"] == 0 and times["b"] == 0 and times["c"] == 2


def test_release_wakes_waiter_at_same_time(env):
    res = Resource(env, capacity=1)
    log = []
    env.process(hold(env, res, log, "first", 5))
    env.process(hold(env, res, log, "second", 1))
    env.run()
    assert (5, "second", "acquired") in log


def test_release_unowned_request_rejected(env):
    res = Resource(env)
    req = res.request()
    res.release(req)
    with pytest.raises(InvalidEventUsage):
        res.release(req)


def test_cancel_waiting_request(env):
    res = Resource(env, capacity=1)
    holder = res.request()
    waiter = res.request()
    assert res.queue_length == 1
    waiter.cancel()
    assert res.queue_length == 0
    res.release(holder)
    assert res.count == 0


def test_cancel_granted_request_rejected(env):
    res = Resource(env)
    req = res.request()
    with pytest.raises(InvalidEventUsage):
        req.cancel()


def test_context_manager_releases_on_exit(env):
    res = Resource(env)

    def proc(env):
        with res.request() as req:
            yield req
            assert res.count == 1
        assert res.count == 0

    env.process(proc(env))
    env.run()


def test_context_manager_cancels_unacquired_on_exit(env):
    res = Resource(env, capacity=1)
    blocker = res.request()
    assert blocker.triggered

    class Abort(Exception):
        pass

    def proc(env):
        try:
            with res.request() as req:
                raise Abort()
                yield req  # pragma: no cover
        except Abort:
            pass
        yield env.timeout(0)

    env.process(proc(env))
    env.run()
    assert res.queue_length == 0


def test_queue_length_reporting(env):
    res = Resource(env, capacity=1)
    res.request()
    res.request()
    res.request()
    assert res.count == 1 and res.queue_length == 2


# -- priority -----------------------------------------------------------------

def hold_prio(env, res, log, tag, priority, duration):
    req = res.request(priority=priority)
    yield req
    log.append(tag)
    yield env.timeout(duration)
    res.release(req)


def test_priority_orders_waiters(env):
    res = PriorityResource(env, capacity=1)
    log = []
    env.process(hold_prio(env, res, log, "holder", 0, 5))

    def late(env):
        yield env.timeout(1)
        env.process(hold_prio(env, res, log, "low", 5, 1))
        env.process(hold_prio(env, res, log, "high", 1, 1))

    env.process(late(env))
    env.run()
    assert log == ["holder", "high", "low"]


def test_priority_ties_are_fifo(env):
    res = PriorityResource(env, capacity=1)
    log = []
    env.process(hold_prio(env, res, log, "holder", 0, 5))

    def late(env):
        yield env.timeout(1)
        for tag in ("first", "second", "third"):
            env.process(hold_prio(env, res, log, tag, 3, 1))

    env.process(late(env))
    env.run()
    assert log == ["holder", "first", "second", "third"]
