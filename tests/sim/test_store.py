"""Store and FilterStore semantics."""

from __future__ import annotations

import pytest

from repro.sim import FilterStore, Store


def test_capacity_must_be_positive(env):
    with pytest.raises(ValueError):
        Store(env, capacity=0)


def test_put_then_get_fifo(env):
    s = Store(env)
    got = []

    def proc(env):
        s.put("a")
        s.put("b")
        got.append((yield s.get()))
        got.append((yield s.get()))

    env.process(proc(env))
    env.run()
    assert got == ["a", "b"]


def test_get_blocks_until_put(env):
    s = Store(env)
    got = []

    def consumer(env):
        item = yield s.get()
        got.append((env.now, item))

    def producer(env):
        yield env.timeout(4)
        s.put("late")

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert got == [(4, "late")]


def test_bounded_put_blocks_until_space(env):
    s = Store(env, capacity=1)
    log = []

    def producer(env):
        yield s.put("one")
        log.append((env.now, "put one"))
        yield s.put("two")
        log.append((env.now, "put two"))

    def consumer(env):
        yield env.timeout(5)
        yield s.get()

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert log == [(0, "put one"), (5, "put two")]


def test_size_tracks_contents(env):
    s = Store(env)
    s.put(1)
    s.put(2)
    env.run()
    assert s.size == 2


def test_multiple_consumers_served_in_request_order(env):
    s = Store(env)
    got = []

    def consumer(env, tag):
        got.append((tag, (yield s.get())))

    env.process(consumer(env, "c1"))
    env.process(consumer(env, "c2"))

    def producer(env):
        yield env.timeout(1)
        s.put("x")
        s.put("y")

    env.process(producer(env))
    env.run()
    assert got == [("c1", "x"), ("c2", "y")]


# -- FilterStore ---------------------------------------------------------------

def test_filter_get_selects_matching_item(env):
    s = FilterStore(env)
    got = []

    def proc(env):
        s.put(1)
        s.put(2)
        s.put(3)
        got.append((yield s.get(lambda x: x % 2 == 0)))

    env.process(proc(env))
    env.run()
    assert got == [2]
    assert list(s.items) == [1, 3]


def test_filter_get_waits_for_matching_item(env):
    s = FilterStore(env)
    got = []

    def consumer(env):
        item = yield s.get(lambda x: x == "wanted")
        got.append((env.now, item))

    def producer(env):
        s.put("other")
        yield env.timeout(3)
        s.put("wanted")

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert got == [(3, "wanted")]


def test_unsatisfiable_filter_does_not_block_others(env):
    s = FilterStore(env)
    got = []

    def blocked(env):
        got.append(("blocked", (yield s.get(lambda x: x == "never"))))

    def easy(env):
        got.append(("easy", (yield s.get())))

    env.process(blocked(env))
    env.process(easy(env))
    s.put("anything")
    env.run()
    assert got == [("easy", "anything")]


def test_filterstore_plain_get_takes_oldest(env):
    s = FilterStore(env)
    got = []

    def proc(env):
        s.put("old")
        s.put("new")
        got.append((yield s.get()))

    env.process(proc(env))
    env.run()
    assert got == ["old"]
