"""Property-based tests (hypothesis) on the simulation kernel."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Environment, Resource, Store


@given(delays=st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False), min_size=1, max_size=40))
def test_clock_visits_events_in_sorted_order(delays):
    env = Environment()
    seen = []
    for d in delays:
        env.timeout(d).callbacks.append(lambda e, d=d: seen.append(env.now))
    env.run()
    assert seen == sorted(seen)
    assert env.now == max(delays)


@given(delays=st.lists(st.floats(min_value=0, max_value=100, allow_nan=False), min_size=1, max_size=20))
def test_processes_accumulate_delays_exactly(delays):
    env = Environment()

    def worker(env):
        for d in delays:
            yield env.timeout(d)
        return env.now

    p = env.process(worker(env))
    env.run()
    assert p.value == sum(delays)


@settings(max_examples=50)
@given(
    capacity=st.integers(min_value=1, max_value=5),
    hold_times=st.lists(st.floats(min_value=0.1, max_value=10, allow_nan=False), min_size=1, max_size=25),
)
def test_resource_never_exceeds_capacity(capacity, hold_times):
    env = Environment()
    res = Resource(env, capacity=capacity)
    overage = []

    def worker(env, hold):
        with res.request() as req:
            yield req
            if res.count > capacity:
                overage.append(res.count)
            yield env.timeout(hold)

    for hold in hold_times:
        env.process(worker(env, hold))
    env.run()
    assert not overage
    assert res.count == 0 and res.queue_length == 0


@settings(max_examples=50)
@given(
    capacity=st.integers(min_value=1, max_value=4),
    n_jobs=st.integers(min_value=1, max_value=20),
)
def test_unit_hold_resource_finishes_in_ceil_batches(capacity, n_jobs):
    # n identical unit-time jobs through a c-slot resource take
    # ceil(n / c) time units.
    env = Environment()
    res = Resource(env, capacity=capacity)

    def worker(env):
        with res.request() as req:
            yield req
            yield env.timeout(1.0)

    for _ in range(n_jobs):
        env.process(worker(env))
    env.run()
    assert env.now == -(-n_jobs // capacity) * 1.0


@settings(max_examples=50)
@given(items=st.lists(st.integers(), min_size=0, max_size=30))
def test_store_preserves_fifo_order(items):
    env = Environment()
    store = Store(env)
    received = []

    def producer(env):
        for item in items:
            yield env.timeout(0.5)
            yield store.put(item)

    def consumer(env):
        for _ in items:
            value = yield store.get()
            received.append(value)

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert received == items


@settings(max_examples=30)
@given(
    n_producers=st.integers(min_value=1, max_value=5),
    items_each=st.integers(min_value=1, max_value=10),
    capacity=st.integers(min_value=1, max_value=3),
)
def test_bounded_store_conserves_items(n_producers, items_each, capacity):
    env = Environment()
    store = Store(env, capacity=capacity)
    total = n_producers * items_each
    received = []

    def producer(env, pid):
        for i in range(items_each):
            yield store.put((pid, i))
            yield env.timeout(0.1)

    def consumer(env):
        for _ in range(total):
            received.append((yield store.get()))

    for pid in range(n_producers):
        env.process(producer(env, pid))
    env.process(consumer(env))
    env.run()
    assert len(received) == total
    assert len(set(received)) == total  # no duplication, no loss
