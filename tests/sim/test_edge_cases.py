"""Kernel edge cases: defusing, triggering chains, engine misuse."""

from __future__ import annotations

import pytest

from repro.sim import AnyOf, Environment, Event, InvalidEventUsage


def test_defused_failure_does_not_crash_run(env):
    e = env.event()
    e.fail(RuntimeError("handled"))
    e.defused()
    env.run()  # no raise


def test_undefused_failure_crashes_run(env):
    e = env.event()
    e.fail(RuntimeError("unhandled"))
    with pytest.raises(RuntimeError, match="unhandled"):
        env.run()


def test_process_waiting_defuses_failure(env):
    class Boom(Exception):
        pass

    def failer(env):
        yield env.timeout(1)
        raise Boom()

    def catcher(env, target):
        try:
            yield target
        except Boom:
            return "ok"

    target = env.process(failer(env))
    p = env.process(catcher(env, target))
    env.run()
    assert p.value == "ok"


def test_trigger_on_triggered_event_rejected(env):
    src = env.event().succeed("x")
    dst = env.event().succeed("y")
    with pytest.raises(InvalidEventUsage):
        dst.trigger(src)


def test_anyof_with_failed_and_ok_mix(env):
    class Boom(Exception):
        pass

    def failer(env):
        yield env.timeout(2)
        raise Boom()

    fast = env.timeout(1, "fast")
    slow_fail = env.process(failer(env))
    done = env.run(until=AnyOf(env, [fast, slow_fail]))
    assert done == {fast: "fast"}
    # Drain: the failure occurs later but the process event has no
    # other watcher — defuse by observing it.
    with pytest.raises(Boom):
        env.run()


def test_event_repr_states(env):
    e = env.event()
    assert "pending" in repr(e)
    e.succeed()
    assert "triggered" in repr(e)
    env.run()
    assert "processed" in repr(e)


def test_interrupt_unstarted_process_rejected(env):
    def proc(env):
        yield env.timeout(1)

    p = env.process(proc(env))
    # The Initialize event has not run yet: no target to detach.
    with pytest.raises(InvalidEventUsage):
        p.interrupt()


def test_yield_event_from_other_environment_rejected(env):
    other = Environment()

    def proc(env):
        yield other.timeout(1)

    env.process(proc(env))
    with pytest.raises(InvalidEventUsage, match="different environment"):
        env.run()


def test_schedule_into_the_future_from_callback(env):
    fired = []

    def chain(event):
        if len(fired) < 3:
            fired.append(event.env.now)
            t = event.env.timeout(1)
            t.callbacks.append(chain)

    t = env.timeout(1)
    t.callbacks.append(chain)
    env.run()
    assert fired == [1, 2, 3]


def test_event_and_condition_composition_mixed(env):
    a, b, c = env.timeout(1, "a"), env.timeout(2, "b"), env.timeout(3, "c")
    done = env.run(until=(a | b) & c)
    assert env.now == 3
    assert set(done.values()) >= {"a", "c"}
