"""Event lifecycle, succeed/fail, and condition composition."""

from __future__ import annotations

import pytest

from repro.sim import AllOf, AnyOf, Environment, InvalidEventUsage


def test_fresh_event_is_pending(env):
    e = env.event()
    assert not e.triggered and not e.processed


def test_value_before_trigger_raises(env):
    with pytest.raises(InvalidEventUsage):
        env.event().value


def test_ok_before_trigger_raises(env):
    with pytest.raises(InvalidEventUsage):
        env.event().ok


def test_succeed_sets_value_and_schedules(env):
    e = env.event().succeed(41)
    assert e.triggered and not e.processed
    env.run()
    assert e.processed and e.ok and e.value == 41


def test_double_succeed_rejected(env):
    e = env.event().succeed()
    with pytest.raises(InvalidEventUsage):
        e.succeed()


def test_fail_then_succeed_rejected(env):
    e = env.event()
    e.fail(RuntimeError("x"))
    e.defused()
    with pytest.raises(InvalidEventUsage):
        e.succeed()


def test_fail_requires_exception_instance(env):
    with pytest.raises(TypeError):
        env.event().fail("not an exception")


def test_failed_event_value_is_the_exception(env):
    err = RuntimeError("boom")
    e = env.event()
    e.fail(err)
    e.defused()
    env.run()
    assert not e.ok and e.value is err


def test_timeout_carries_value(env):
    t = env.timeout(1, value="tick")
    env.run()
    assert t.value == "tick"


def test_callbacks_receive_the_event(env):
    seen = []
    e = env.timeout(1)
    e.callbacks.append(seen.append)
    env.run()
    assert seen == [e]


def test_trigger_copies_state(env):
    src = env.event().succeed("payload")
    dst = env.event()
    src.callbacks.append(dst.trigger)
    env.run()
    assert dst.processed and dst.value == "payload"


# -- conditions ---------------------------------------------------------------

def test_allof_waits_for_every_event(env):
    t1, t2 = env.timeout(1, "a"), env.timeout(3, "b")
    done = env.run(until=AllOf(env, [t1, t2]))
    assert env.now == 3
    assert list(done.values()) == ["a", "b"]


def test_anyof_fires_on_first(env):
    t1, t2 = env.timeout(5, "slow"), env.timeout(1, "fast")
    done = env.run(until=AnyOf(env, [t1, t2]))
    assert env.now == 1
    assert done == {t2: "fast"}


def test_and_operator_builds_allof(env):
    t1, t2 = env.timeout(1), env.timeout(2)
    env.run(until=t1 & t2)
    assert env.now == 2


def test_or_operator_builds_anyof(env):
    t1, t2 = env.timeout(1), env.timeout(2)
    env.run(until=t1 | t2)
    assert env.now == 1


def test_empty_allof_fires_immediately(env):
    cond = AllOf(env, [])
    assert cond.triggered


def test_condition_with_already_processed_event(env):
    t = env.timeout(1, "early")
    env.run()
    done = env.run(until=AllOf(env, [t]))
    assert done == {t: "early"}


def test_nested_condition_values_flatten(env):
    t1, t2, t3 = env.timeout(1, "a"), env.timeout(2, "b"), env.timeout(3, "c")
    done = env.run(until=(t1 & t2) & t3)
    assert list(done.values()) == ["a", "b", "c"]


def test_condition_rejects_foreign_events(env):
    other = Environment()
    with pytest.raises(ValueError):
        AllOf(env, [env.timeout(1), other.timeout(1)])


def test_condition_propagates_failure(env):
    class Boom(Exception):
        pass

    def failer(env):
        yield env.timeout(1)
        raise Boom()

    p = env.process(failer(env))
    cond = AllOf(env, [p, env.timeout(5)])
    with pytest.raises(Boom):
        env.run(until=cond)


def test_env_helpers_all_of_any_of(env):
    a, b = env.timeout(1), env.timeout(2)
    assert type(env.all_of([a, b])).__name__ == "AllOf"
    assert type(env.any_of([a, b])).__name__ == "AnyOf"
