"""Process semantics: yielding, return values, failures, interrupts."""

from __future__ import annotations

import pytest

from repro.sim import Interrupt, InvalidEventUsage


def test_process_requires_generator(env):
    def not_a_generator(env):
        return 42

    with pytest.raises(TypeError, match="generator"):
        env.process(not_a_generator(env))


def test_return_value_becomes_event_value(env):
    def proc(env):
        yield env.timeout(1)
        return "result"

    p = env.process(proc(env))
    env.run()
    assert p.value == "result"


def test_yield_receives_event_value(env):
    got = []

    def proc(env):
        got.append((yield env.timeout(2, value="tick")))

    env.process(proc(env))
    env.run()
    assert got == ["tick"]


def test_process_waits_on_another_process(env):
    def inner(env):
        yield env.timeout(3)
        return 7

    def outer(env):
        value = yield env.process(inner(env))
        return value * 2

    p = env.process(outer(env))
    env.run()
    assert p.value == 14 and env.now == 3


def test_yield_already_processed_event_continues_synchronously(env):
    t = env.timeout(1, value="x")
    env.run()

    def proc(env):
        v = yield t  # already processed: resumes without advancing time
        return v

    p = env.process(proc(env))
    env.run()
    assert p.value == "x" and env.now == 1


def test_yield_non_event_raises(env):
    def proc(env):
        yield 42

    env.process(proc(env))
    with pytest.raises(InvalidEventUsage, match="not an Event"):
        env.run()


def test_exception_in_process_fails_its_event(env):
    class Boom(Exception):
        pass

    def failer(env):
        yield env.timeout(1)
        raise Boom()

    def watcher(env, target):
        try:
            yield target
        except Boom:
            return "caught"

    target = env.process(failer(env))
    w = env.process(watcher(env, target))
    env.run()
    assert w.value == "caught"


def test_is_alive_transitions(env):
    def proc(env):
        yield env.timeout(1)

    p = env.process(proc(env))
    assert p.is_alive
    env.run()
    assert not p.is_alive


def test_interrupt_raises_inside_process(env):
    caught = []

    def sleeper(env):
        try:
            yield env.timeout(100)
        except Interrupt as i:
            caught.append(i.cause)
        return "done"

    def interrupter(env, victim):
        yield env.timeout(5)
        victim.interrupt(cause="wake up")

    victim = env.process(sleeper(env))
    env.process(interrupter(env, victim))
    env.run(until=victim)
    assert caught == ["wake up"]
    assert victim.value == "done"
    assert env.now == 5
    # The abandoned 100-unit timeout stays queued (simpy semantics);
    # a full drain advances the clock past it harmlessly.
    env.run()
    assert env.now == 100


def test_interrupt_finished_process_rejected(env):
    def quick(env):
        yield env.timeout(1)

    p = env.process(quick(env))
    env.run()
    with pytest.raises(InvalidEventUsage):
        p.interrupt()


def test_interrupted_process_can_rewait(env):
    def sleeper(env):
        try:
            yield env.timeout(100)
        except Interrupt:
            yield env.timeout(2)  # resumes waiting after interrupt
        return env.now

    def interrupter(env, victim):
        yield env.timeout(1)
        victim.interrupt()

    victim = env.process(sleeper(env))
    env.process(interrupter(env, victim))
    env.run()
    assert victim.value == 3


def test_process_name_from_function(env):
    def my_worker(env):
        yield env.timeout(0)

    p = env.process(my_worker(env))
    assert p.name == "my_worker"


def test_process_name_override(env):
    def my_worker(env):
        yield env.timeout(0)

    p = env.process(my_worker(env), name="custom")
    assert p.name == "custom"


def test_target_tracks_current_wait(env):
    def proc(env, t):
        yield t

    t = env.timeout(5)
    p = env.process(proc(env, t))
    env.run(until=1)
    assert p.target is t


def test_many_processes_share_clock_deterministically(env):
    log = []

    def worker(env, wid, delay):
        yield env.timeout(delay)
        log.append(wid)

    for wid, delay in enumerate([3, 1, 2, 1, 3]):
        env.process(worker(env, wid, delay))
    env.run()
    # Equal delays resolve in creation order.
    assert log == [1, 3, 2, 0, 4]
