"""Environment: clock, queue ordering, run() termination modes."""

from __future__ import annotations

import pytest

from repro.sim import EmptySchedule, Environment


def test_initial_time_defaults_to_zero(env):
    assert env.now == 0.0


def test_initial_time_configurable():
    assert Environment(initial_time=5.5).now == 5.5


def test_peek_empty_queue_is_inf(env):
    assert env.peek() == float("inf")


def test_peek_returns_next_event_time(env):
    env.timeout(3.0)
    env.timeout(1.5)
    assert env.peek() == 1.5


def test_len_counts_scheduled_events(env):
    env.timeout(1)
    env.timeout(2)
    assert len(env) == 2


def test_step_advances_clock(env):
    env.timeout(2.0)
    env.step()
    assert env.now == 2.0


def test_step_on_empty_queue_raises(env):
    with pytest.raises(EmptySchedule):
        env.step()


def test_run_until_number_stops_clock(env):
    env.timeout(10.0)
    env.run(until=4.0)
    assert env.now == 4.0


def test_run_until_number_excludes_events_at_boundary(env):
    fired = []
    env.timeout(4.0).callbacks.append(lambda e: fired.append(env.now))
    env.run(until=4.0)
    assert fired == []  # boundary events are not processed (simpy semantics)


def test_run_until_past_time_raises(env):
    env.timeout(5)
    env.run(until=3)
    with pytest.raises(ValueError):
        env.run(until=1)


def test_run_until_event_returns_its_value(env):
    t = env.timeout(2.0, value="payload")
    assert env.run(until=t) == "payload"
    assert env.now == 2.0


def test_run_until_already_processed_event_returns_immediately(env):
    t = env.timeout(1.0, value="v")
    env.run()
    assert env.run(until=t) == "v"


def test_run_drains_queue_when_no_until(env):
    env.timeout(1)
    env.timeout(7)
    env.run()
    assert env.now == 7.0
    assert len(env) == 0


def test_run_until_event_never_triggering_raises(env):
    pending = env.event()
    env.timeout(1)
    with pytest.raises(RuntimeError, match="exhausted"):
        env.run(until=pending)


def test_same_time_events_fire_in_scheduling_order(env):
    order = []
    for tag in ("a", "b", "c"):
        env.timeout(1.0, value=tag).callbacks.append(
            lambda e: order.append(e.value)
        )
    env.run()
    assert order == ["a", "b", "c"]


def test_negative_delay_rejected(env):
    with pytest.raises(ValueError):
        env.timeout(-1)


def test_schedule_negative_delay_rejected(env):
    with pytest.raises(ValueError):
        env.schedule(env.event(), delay=-0.5)


def test_failed_event_without_handler_crashes_run(env):
    class Boom(Exception):
        pass

    def proc(env):
        yield env.timeout(1)
        raise Boom("inside process")

    env.process(proc(env))
    with pytest.raises(Boom):
        env.run()


def test_run_until_failed_event_reraises(env):
    class Boom(Exception):
        pass

    def proc(env):
        yield env.timeout(1)
        raise Boom()

    p = env.process(proc(env))
    with pytest.raises(Boom):
        env.run(until=p)


def test_clock_is_monotonic_across_many_events(env):
    times = []

    def proc(env, delay):
        yield env.timeout(delay)
        times.append(env.now)

    for d in (5, 1, 3, 2, 4):
        env.process(proc(env, d))
    env.run()
    assert times == sorted(times) == [1, 2, 3, 4, 5]


def test_active_process_visible_during_execution(env):
    observed = []

    def proc(env):
        observed.append(env.active_process)
        yield env.timeout(0)

    p = env.process(proc(env))
    env.run()
    assert observed == [p]
    assert env.active_process is None
