"""Ring invariants: deterministic placement, minimal remapping, replicas.

The ring is pure computation, so these tests run in tier-1 with no
sockets.  The hypothesis properties pin the three ISSUE invariants:
(1) adding a shard remaps ≈1/N of the keys and *only* toward the new
shard, (2) lookup is a pure function of the map — byte-identical
across processes, (3) every key's primary and replica differ when the
ring has at least two members.
"""

from __future__ import annotations

import json
import subprocess
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import HashRing, plan_key, stable_hash
from repro.durable.errors import ValidationError
from repro.params import MachineParams

#: Enough keys for stable ≈1/N statistics, few enough to stay fast.
KEYS = [f"key-{i}" for i in range(600)]


class TestStableHash:
    def test_golden_value(self):
        # Pinned output: any change to the hash function is a silent
        # full-cluster remap, so it must fail a test, loudly.
        assert stable_hash("ring:0:0:0") == 4768781096301267140
        assert stable_hash("") == 16476032584258269876

    def test_distinct_inputs_distinct_outputs(self):
        values = {stable_hash(f"probe:{i}") for i in range(10_000)}
        assert len(values) == 10_000

    def test_cross_process_determinism(self):
        # Python's builtin hash() would fail this: PYTHONHASHSEED
        # varies per process.  blake2b must not.
        script = (
            "from repro.cluster import stable_hash;"
            "print(stable_hash('ring:0:0:0'))"
        )
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            check=True,
        )
        assert int(out.stdout.strip()) == stable_hash("ring:0:0:0")


class TestPlanKey:
    def test_default_params_collapse_to_paper_machine(self):
        assert plan_key(64, 8) == plan_key(64, 8, MachineParams())

    def test_distinct_params_distinct_keys(self):
        custom = MachineParams(t_s=1.0, t_r=2.0, t_step=1.0, t_sq=0.5, ports=2)
        assert plan_key(64, 8, custom) != plan_key(64, 8)
        assert plan_key(64, 8) != plan_key(8, 64)


class TestConstruction:
    def test_rejects_empty_and_duplicates(self):
        with pytest.raises(ValidationError):
            HashRing([])
        with pytest.raises(ValidationError):
            HashRing([0, 1, 1])

    def test_membership_changes_bump_epoch(self):
        ring = HashRing([0, 1])
        assert ring.epoch == 0
        ring.add_shard(2)
        assert ring.epoch == 1
        ring.remove_shard(0)
        assert ring.epoch == 2
        assert ring.members == (1, 2)

    def test_cannot_remove_last_or_unknown(self):
        ring = HashRing([5])
        with pytest.raises(ValidationError):
            ring.remove_shard(5)
        with pytest.raises(ValidationError):
            ring.remove_shard(7)

    def test_map_round_trip_is_identical(self):
        ring = HashRing([0, 2, 5], vnodes=32, seed=9, epoch=3)
        clone = HashRing.from_map(json.loads(json.dumps(ring.to_map())))
        assert clone.to_map() == ring.to_map()
        assert [clone.lookup(k) for k in KEYS] == [ring.lookup(k) for k in KEYS]


@settings(max_examples=30, deadline=None)
@given(
    n_shards=st.integers(min_value=2, max_value=8),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_add_remaps_only_to_the_new_shard(n_shards, seed):
    """Exact minimality: a join steals keys, never shuffles survivors."""
    before = HashRing(list(range(n_shards)), seed=seed)
    after = HashRing(list(range(n_shards)), seed=seed)
    after.add_shard(n_shards)
    moved = 0
    for key in KEYS:
        old, new = before.lookup(key), after.lookup(key)
        if old != new:
            assert new == n_shards, f"{key} moved between survivors {old}->{new}"
            moved += 1
    # ≈1/(N+1) of the keys move; allow generous statistical slack.
    expected = len(KEYS) / (n_shards + 1)
    assert 0.3 * expected <= moved <= 2.5 * expected


@settings(max_examples=30, deadline=None)
@given(
    members=st.sets(st.integers(min_value=0, max_value=40), min_size=1, max_size=8),
    seed=st.integers(min_value=0, max_value=1000),
    key=st.text(min_size=0, max_size=30),
)
def test_lookup_is_a_pure_function_of_the_map(members, seed, key):
    ring = HashRing(sorted(members), seed=seed)
    rebuilt = HashRing.from_map(ring.to_map())
    assert ring.lookup(key) == rebuilt.lookup(key)
    assert ring.chain(key, 2) == rebuilt.chain(key, 2)


@settings(max_examples=30, deadline=None)
@given(
    members=st.sets(st.integers(min_value=0, max_value=40), min_size=2, max_size=8),
    seed=st.integers(min_value=0, max_value=1000),
    n=st.integers(min_value=2, max_value=256),
    m=st.integers(min_value=1, max_value=32),
)
def test_primary_and_replica_differ(members, seed, n, m):
    ring = HashRing(sorted(members), seed=seed)
    chain = ring.chain(plan_key(n, m), 2)
    assert len(chain) == 2
    assert chain[0] != chain[1]
    assert set(chain) <= set(ring.members)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=1000))
def test_chain_never_exceeds_membership(seed):
    ring = HashRing([0, 1, 2], seed=seed)
    chain = ring.chain("k", 10)
    assert sorted(chain) == [0, 1, 2]
