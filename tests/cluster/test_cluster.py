"""Cluster integration: routing, replication, failover (service tier).

Most tests run in-process PlanServers as shards — one event loop,
ephemeral ports, fast.  The end of the module pays for one real
subprocess cluster to prove the SIGKILL story: a shard killed mid-load
costs retries, never client-visible errors, and every answer stays
byte-identical to the single-server path.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.cluster import (
    ClusterClient,
    ClusterRouter,
    HashRing,
    ShardSpec,
    plan_key,
    spawn_shards,
)
from repro.obs import parse_prometheus
from repro.service import (
    PlanClient,
    PlanRequest,
    PlanServer,
    PlanServiceError,
    StaleMapError,
    plan,
)

pytestmark = pytest.mark.service


def run(coro):
    return asyncio.run(coro)


async def started_cluster(n_shards: int = 2, **router_kwargs):
    """In-process shards + router, all on ephemeral ports."""
    servers = []
    specs = []
    for sid in range(n_shards):
        server = PlanServer(port=0, workers=1, max_delay=0.002, shard_id=sid)
        await server.start()
        servers.append(server)
        specs.append(ShardSpec(shard_id=sid, host="127.0.0.1", port=server.port))
    router_kwargs.setdefault("probe_interval", 0.05)
    router_kwargs.setdefault("probe_timeout", 0.5)
    router_kwargs.setdefault("fail_after", 2)
    router = ClusterRouter(specs, port=0, **router_kwargs)
    await router.start()
    return servers, router


async def stop_cluster(servers, router):
    await router.shutdown()
    for server in servers:
        await server.shutdown()


def owned_keys(ring: HashRing, m: int = 4):
    """One (n, owner) pair per ring member, n scanning upward."""
    found = {}
    n = 8
    while len(found) < len(ring.members):
        sid = ring.lookup(plan_key(n, m))
        found.setdefault(sid, n)
        n += 8
    return found


class TestRouterForwarding:
    def test_forwarded_plans_match_local_planner_exactly(self):
        async def body():
            servers, router = await started_cluster(3)
            client = await PlanClient.connect("127.0.0.1", router.port)
            mix = [(n, m) for n in (8, 16, 32, 64, 96) for m in (1, 4, 16)]
            results = await asyncio.gather(*[client.plan(n, m) for n, m in mix])
            status = router.status_report()
            await client.close()
            await stop_cluster(servers, router)
            return mix, results, status

        mix, results, status = run(body())
        for (n, m), result in zip(mix, results):
            # Byte-identical to the single-server/in-process path.
            assert json.dumps(result.to_dict(), sort_keys=True) == json.dumps(
                plan(PlanRequest(n=n, m=m)).to_dict(), sort_keys=True
            )
        assert status["counters"]["forwarded"] == len(mix)
        assert status["counters"]["failovers"] == 0

    def test_requests_for_one_key_land_on_one_shard(self):
        """Routing by plan key preserves per-key single-flight dedupe."""

        async def body():
            # hot_threshold=0: no replica warming, so counts are exact.
            servers, router = await started_cluster(2, hot_threshold=0)
            client = await PlanClient.connect("127.0.0.1", router.port)
            await asyncio.gather(*[client.plan(64, 8) for _ in range(24)])
            stats = []
            for server in servers:
                stats.append(server.metrics.snapshot()["counters"])
            await client.close()
            await stop_cluster(servers, router)
            return router.ring, stats

        ring, stats = run(body())
        owner = ring.lookup(plan_key(64, 8))
        assert stats[owner]["plans"] == 24
        assert stats[1 - owner]["plans"] == 0

    def test_bad_requests_answer_without_a_shard_hop(self):
        async def body():
            servers, router = await started_cluster(2)
            client = await PlanClient.connect("127.0.0.1", router.port)
            with pytest.raises(PlanServiceError) as info:
                await client.plan(1, 2)
            await client.close()
            await stop_cluster(servers, router)
            return info.value

        assert run(body()).code == "bad_request"

    def test_router_health_and_ping(self):
        async def body():
            servers, router = await started_cluster(2)
            async with await PlanClient.connect("127.0.0.1", router.port) as client:
                health = await client.health()
                alive = await client.ping()
            await stop_cluster(servers, router)
            return health, alive

        health, alive = run(body())
        assert alive is True
        assert health["role"] == "router"
        assert health["members"] == [0, 1]
        assert health["ring_epoch"] == 0


class TestShardMapClient:
    def test_direct_routing_matches_local_planner(self):
        async def body():
            servers, router = await started_cluster(2)
            client = await ClusterClient.connect("127.0.0.1", router.port)
            mix = [(n, 4) for n in range(8, 136, 8)]
            results = await asyncio.gather(*[client.plan(n, m) for n, m in mix])
            forwarded = router.forwarded.value
            await client.close()
            await stop_cluster(servers, router)
            return mix, results, forwarded

        mix, results, forwarded = run(body())
        for (n, m), result in zip(mix, results):
            assert result == plan(PlanRequest(n=n, m=m))
        # Direct routing: the router carried the map, not the plans.
        assert forwarded == 0

    def test_shard_map_carries_addresses_for_every_member(self):
        async def body():
            servers, router = await started_cluster(3)
            client = await ClusterClient.connect("127.0.0.1", router.port)
            ring, specs = client.ring, dict(client._specs)
            await client.close()
            await stop_cluster(servers, router)
            return servers, ring, specs

        servers, ring, specs = run(body())
        assert set(specs) == set(ring.members) == {0, 1, 2}
        assert {specs[sid].port for sid in specs} == {s.port for s in servers}


class TestEpochFencing:
    def test_stale_epoch_is_refused_with_current_epoch(self):
        async def body():
            server = PlanServer(port=0, shard_id=0, ring_epoch=4)
            await server.start()
            async with await PlanClient.connect("127.0.0.1", server.port) as client:
                with pytest.raises(StaleMapError) as info:
                    await client.plan(16, 4, epoch=3)
                current = await client.plan(16, 4, epoch=4)
                ahead = await client.plan(16, 4, epoch=9)
            await server.shutdown()
            return info.value, current, ahead

        error, current, ahead = run(body())
        assert error.ring_epoch == 4
        assert current == plan(PlanRequest(n=16, m=4))
        assert ahead == current

    def test_configure_moves_the_epoch_monotonically(self):
        async def body():
            server = PlanServer(port=0)
            await server.start()
            async with await PlanClient.connect("127.0.0.1", server.port) as client:
                configured = await client.configure(ring_epoch=2, shard_id=1)
                with pytest.raises(PlanServiceError) as info:
                    await client.configure(ring_epoch=1)
                health = await client.health()
            await server.shutdown()
            return configured, info.value, health

        configured, error, health = run(body())
        assert configured == {"shard_id": 1, "ring_epoch": 2}
        assert error.code == "bad_request"
        assert health["shard_id"] == 1 and health["ring_epoch"] == 2

    def test_cluster_client_recovers_from_stale_map(self):
        """A deliberately staled client refreshes and re-routes, no error."""

        async def body():
            servers, router = await started_cluster(2, probe_interval=5.0)
            client = await ClusterClient.connect("127.0.0.1", router.port)
            # Simulate a membership change behind the client's back:
            # the authority bumps its ring and configures the shards.
            router.ring.epoch += 1
            await router._configure_members()
            stale_epoch = client.epoch
            keys = owned_keys(client.ring)
            results = await asyncio.gather(
                *[client.plan(n, 4) for n in keys.values()]
            )
            retries, refreshed = client.stale_map_retries, client.epoch
            await client.close()
            await stop_cluster(servers, router)
            return keys, results, retries, stale_epoch, refreshed

        keys, results, retries, stale_epoch, refreshed = run(body())
        for n, result in zip(keys.values(), results):
            assert result == plan(PlanRequest(n=n, m=4))
        assert retries >= 1
        assert refreshed == stale_epoch + 1


class TestFailover:
    def test_dead_shard_fails_over_inline_and_is_evicted(self):
        async def body():
            servers, router = await started_cluster(2, rejoin=False)
            client = await PlanClient.connect("127.0.0.1", router.port)
            keys = owned_keys(router.ring)
            victim = min(keys)  # deterministic choice; any member works
            await servers[victim].shutdown(drain=False)
            # Keys owned by the dead shard must answer via the replica.
            results = await asyncio.gather(
                *[client.plan(n, 4) for n in keys.values()]
            )
            for _ in range(100):  # probes evict within a few intervals
                if router.ring.epoch > 0:
                    break
                await asyncio.sleep(0.05)
            status = router.status_report()
            survivor_epoch = servers[1 - victim].ring_epoch
            await client.close()
            await stop_cluster(servers, router)
            return keys, victim, results, status, survivor_epoch

        keys, victim, results, status, survivor_epoch = run(body())
        for n, result in zip(keys.values(), results):
            assert result == plan(PlanRequest(n=n, m=4))
        assert status["counters"]["failovers"] >= 1
        assert status["down"] == [victim]
        assert status["ring"]["epoch"] == 1
        assert status["ring"]["members"] == [1 - victim]
        # The survivor was reconfigured to the post-eviction epoch.
        assert survivor_epoch == 1

    def test_recovered_shard_rejoins_with_an_epoch_bump(self):
        async def body():
            servers, router = await started_cluster(2, rejoin=True)
            victim = 0
            port = servers[victim].port
            await servers[victim].shutdown(drain=False)
            for _ in range(100):
                if router.ring.epoch == 1:
                    break
                await asyncio.sleep(0.05)
            assert victim not in router.ring.members
            # "Respawn" the shard on its old address.
            revived = PlanServer(port=port, shard_id=victim)
            await revived.start()
            servers[victim] = revived
            for _ in range(100):
                if victim in router.ring.members:
                    break
                await asyncio.sleep(0.05)
            status = router.status_report()
            await stop_cluster(servers, router)
            return victim, status

        victim, status = run(body())
        assert victim in status["ring"]["members"]
        assert status["down"] == []
        assert status["ring"]["epoch"] == 2  # evict + rejoin
        assert status["counters"]["rejoins"] == 1

    def test_hot_keys_are_warmed_on_the_replica(self):
        async def body():
            servers, router = await started_cluster(
                2, hot_threshold=4, probe_interval=5.0
            )
            client = await PlanClient.connect("127.0.0.1", router.port)
            for _ in range(6):
                await client.plan(64, 8)
            # Let the fire-and-forget warm request land.
            for _ in range(100):
                if all(s.metrics.snapshot()["counters"]["plans"] > 0 for s in servers):
                    break
                await asyncio.sleep(0.02)
            warmed = router.warmed_keys.value
            counts = [s.metrics.snapshot()["counters"]["plans"] for s in servers]
            await client.close()
            await stop_cluster(servers, router)
            return router.ring, warmed, counts

        ring, warmed, counts = run(body())
        owner = ring.lookup(plan_key(64, 8))
        assert warmed == 1
        assert counts[owner] == 6
        assert counts[1 - owner] == 1  # exactly the warm request


class TestClusterExposition:
    def test_metrics_scrape_is_strict_legal_with_shard_labels(self):
        async def body():
            servers, router = await started_cluster(2, probe_interval=0.05)
            client = await PlanClient.connect("127.0.0.1", router.port)
            for n in (8, 16, 32):
                await client.plan(n, 4)
            for _ in range(100):  # wait until both shards were probed
                if len(router._health) == 2:
                    break
                await asyncio.sleep(0.02)
            raw = await client.request({"type": "metrics"})
            await client.close()
            await stop_cluster(servers, router)
            return raw

        raw = run(body())
        assert raw["ok"] is True
        families = parse_prometheus(raw["metrics"])  # strict: must be legal
        shard_labels = {
            labels.get("shard")
            for family in families.values()
            for _, labels, _ in family.samples
        }
        assert {"router", "0", "1"} <= shard_labels
        router_family = families["repro_router_counters_forwarded_total"]
        assert router_family.type == "counter"
        # In-process shards share GLOBAL_METRICS, so the family also
        # shows up under shard="0"/"1"; the router's own series is the
        # one that matters here.
        [value] = [
            value
            for _, labels, value in router_family.samples
            if labels == {"shard": "router"}
        ]
        assert value == 3.0
        # Per-shard histogram series coexist under one family name.
        latency = families["repro_service_plan_latency_us"]
        shards_with_buckets = {
            labels["shard"]
            for name, labels, _ in latency.samples
            if name.endswith("_bucket")
        }
        assert shards_with_buckets == {"0", "1"}


class TestSubprocessSIGKILL:
    """The ISSUE's kill-one-shard e2e: real processes, real SIGKILL."""

    def test_sigkill_mid_load_costs_retries_never_errors(self):
        shards = spawn_shards(2)
        try:
            run(self._drive(shards))
        finally:
            for shard in shards:
                shard.kill()

    async def _drive(self, shards):
        specs = [s.spec for s in shards]
        router = ClusterRouter(
            specs, port=0, probe_interval=0.1, probe_timeout=1.0, fail_after=2,
            rejoin=False,
        )
        await router.start()
        client = await ClusterClient.connect("127.0.0.1", router.port)
        victim = router.ring.lookup(plan_key(64, 8))
        warmup = [(64, 8), (48, 4), (96, 16), (32, 2)]
        for n, m in warmup:
            await client.plan(n, m)
        # Keys the victim owns: these MUST hit the corpse after the kill.
        victim_keys = [
            (n, 8) for n in range(8, 512, 8)
            if router.ring.lookup(plan_key(n, 8)) == victim
        ][:4]
        assert victim_keys, "ring should give the victim some keys"
        tasks = [
            asyncio.ensure_future(client.plan(n, m))
            for n, m in warmup + victim_keys
        ]
        shards[victim].kill()  # SIGKILL, mid-load
        mix = warmup + victim_keys
        results = await asyncio.gather(*tasks)  # raises on any client error
        for (n, m), result in zip(mix, results):
            assert json.dumps(result.to_dict(), sort_keys=True) == json.dumps(
                plan(PlanRequest(n=n, m=m)).to_dict(), sort_keys=True
            )
        for _ in range(100):  # probes notice the corpse
            if victim not in router.ring.members:
                break
            await asyncio.sleep(0.05)
        status = router.status_report()
        assert status["down"] == [victim]
        assert status["ring"]["epoch"] == 1
        # The kill was absorbed by retries/failover, never surfaced.
        recovered = (
            client.stale_map_retries
            + client.router_fallbacks
            + status["counters"]["failovers"]
        )
        assert recovered >= 1
        await client.close()
        await router.shutdown()
