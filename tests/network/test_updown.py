"""Up*/down* routing legality, reachability, and determinism."""

from __future__ import annotations

import itertools

import pytest

from repro.network import (
    RoutingError,
    Topology,
    UpDownRouter,
    build_irregular_network,
    host,
    switch,
)


def legal(router, route):
    """True iff the switch part of the route is up* then down*."""
    descending = False
    for (u, v) in route:
        if u[0] != "switch" or v[0] != "switch":
            continue
        up = router.is_up(u, v)
        if descending and up:
            return False
        if not up:
            descending = True
    return True


@pytest.fixture(scope="module")
def net():
    t = build_irregular_network(seed=11)
    return t, UpDownRouter(t)


def test_default_root_is_highest_degree(net):
    t, r = net
    best = max(t.switches, key=lambda s: (len(t.switch_neighbors(s)), -s[1]))
    assert r.root == best


def test_levels_start_at_root(net):
    t, r = net
    assert r.level[r.root] == 0
    for sw in t.switches:
        assert r.level[sw] >= 0


def test_adjacent_levels_differ_by_at_most_one(net):
    t, r = net
    for sw in t.switches:
        for nbr in t.switch_neighbors(sw):
            assert abs(r.level[sw] - r.level[nbr]) <= 1


def test_is_up_antisymmetric(net):
    t, r = net
    for sw in t.switches:
        for nbr in t.switch_neighbors(sw):
            assert r.is_up(sw, nbr) != r.is_up(nbr, sw)


def test_all_pairs_routable_and_legal(net):
    t, r = net
    for a, b in itertools.permutations(t.hosts[:16], 2):
        route = r.route(a, b)
        assert route[0] == (a, t.host_switch(a))
        assert route[-1] == (t.host_switch(b), b)
        assert legal(r, route)


def test_route_is_connected_chain(net):
    t, r = net
    route = r.route(host(0), host(63))
    for (u1, v1), (u2, v2) in zip(route, route[1:]):
        assert v1 == u2


def test_same_switch_route_is_two_hops(net):
    t, r = net
    # hosts 0..3 share switch 0 by the generator's numbering.
    route = r.route(host(0), host(1))
    assert len(route) == 2


def test_route_to_self_rejected(net):
    _, r = net
    with pytest.raises(RoutingError):
        r.route(host(0), host(0))


def test_routes_are_cached_and_deterministic(net):
    _, r = net
    r1 = r.route(host(2), host(50))
    r2 = r.route(host(2), host(50))
    assert r1 is r2  # cache hit
    fresh = UpDownRouter(net[0]).route(host(2), host(50))
    assert fresh == r1  # determinism across router instances


def test_hop_count(net):
    _, r = net
    assert r.hop_count(host(0), host(1)) == len(r.route(host(0), host(1)))


def test_explicit_root_override():
    t = build_irregular_network(seed=4)
    r = UpDownRouter(t, root=switch(3))
    assert r.root == switch(3) and r.level[switch(3)] == 0


def test_non_switch_root_rejected():
    t = build_irregular_network(seed=4)
    with pytest.raises(RoutingError):
        UpDownRouter(t, root=host(0))


def test_no_switches_rejected():
    with pytest.raises(RoutingError):
        UpDownRouter(Topology())


def test_disconnected_fabric_rejected():
    t = Topology()
    t.add_switch(0)
    t.add_switch(1)
    with pytest.raises(RoutingError, match="disconnected"):
        UpDownRouter(t)


def test_route_length_reasonable(net):
    # No route should visit more switches than exist.
    t, r = net
    for a, b in itertools.permutations(t.hosts[:10], 2):
        assert len(r.route(a, b)) <= len(t.switches) + 2


@pytest.mark.parametrize("seed", range(4))
def test_legality_across_topologies(seed):
    t = build_irregular_network(seed=seed)
    r = UpDownRouter(t)
    hosts = t.hosts[::7]
    for a, b in itertools.permutations(hosts, 2):
        assert legal(r, r.route(a, b))
