"""Random irregular network generator."""

from __future__ import annotations

import pytest

from repro.network import TopologyError, build_irregular_network


def test_paper_defaults():
    t = build_irregular_network(seed=0)
    assert len(t.hosts) == 64
    assert len(t.switches) == 16
    assert t.is_connected()


def test_port_budget_respected():
    t = build_irregular_network(seed=3)
    for sw in t.switches:
        assert t.degree(sw) <= 8


def test_four_hosts_per_switch():
    t = build_irregular_network(seed=5)
    for sw in t.switches:
        assert len(t.attached_hosts(sw)) == 4


def test_host_numbering_convention():
    t = build_irregular_network(seed=1)
    for i, h in enumerate(sorted(t.hosts, key=lambda x: x[1])):
        assert h == ("host", i)
        # host i sits on switch i // 4
        assert t.host_switch(h)[1] == i // 4


def test_deterministic_per_seed():
    a = build_irregular_network(seed=9)
    b = build_irregular_network(seed=9)
    assert set(a.channels()) == set(b.channels())


def test_different_seeds_differ():
    a = build_irregular_network(seed=0)
    b = build_irregular_network(seed=1)
    assert set(a.channels()) != set(b.channels())


def test_small_configurations():
    t = build_irregular_network(n_switches=4, switch_ports=6, hosts_per_switch=2, seed=0)
    assert len(t.hosts) == 8 and len(t.switches) == 4
    assert t.is_connected()


def test_single_switch_network():
    t = build_irregular_network(n_switches=1, switch_ports=8, hosts_per_switch=8, seed=0)
    assert len(t.hosts) == 8
    assert t.is_connected()


def test_extra_links_added_beyond_spanning_tree():
    # With 4 free inter-switch ports per switch, the random matching
    # should add links beyond the 15 tree links.
    t = build_irregular_network(seed=2)
    n_links = sum(len(t.switch_neighbors(s)) for s in t.switches) // 2
    assert n_links > 15


def test_impossible_configuration_rejected():
    with pytest.raises(TopologyError):
        build_irregular_network(n_switches=4, switch_ports=4, hosts_per_switch=4, seed=0)


def test_too_many_hosts_rejected():
    with pytest.raises(TopologyError):
        build_irregular_network(n_switches=2, switch_ports=4, hosts_per_switch=5, seed=0)


def test_zero_switch_rejected():
    with pytest.raises(TopologyError):
        build_irregular_network(n_switches=0, seed=0)


@pytest.mark.parametrize("seed", range(6))
def test_many_seeds_connected_and_within_ports(seed):
    t = build_irregular_network(seed=seed)
    assert t.is_connected()
    assert all(t.degree(sw) <= 8 for sw in t.switches)
