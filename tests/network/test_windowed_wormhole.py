"""Finite-worm (windowed) wormhole transmission."""

from __future__ import annotations

import pytest

from repro.network import ChannelPool
from repro.network.wormhole import transmit, transmit_windowed
from repro.params import SystemParams
from repro.sim import Environment

#: worm_flits = 64/8 = 8; flit_cycle = 8/64 = 0.125; t_switch = 1.
PARAMS = SystemParams(t_switch=1.0, link_bandwidth=64.0, packet_bytes=64, flit_bytes=8)


def run_windowed(routes, starts=None, params=PARAMS):
    env = Environment()
    pool = ChannelPool(env)
    spans = []

    def sender(env, route, delay):
        yield env.timeout(delay)
        begin = env.now
        yield from transmit_windowed(env, pool, route, params)
        spans.append((begin, env.now))

    starts = starts or [0.0] * len(routes)
    for route, delay in zip(routes, starts):
        env.process(sender(env, route, delay))
    env.run()
    return spans, pool


def test_empty_route_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        list(transmit_windowed(env, ChannelPool(env), [], PARAMS))


def test_uncontended_latency_formula():
    # L hops: L * (t_switch + flit_cycle) header + worm_flits * flit_cycle drain.
    route = [("a", "b"), ("b", "c"), ("c", "d")]
    spans, _ = run_windowed([route])
    expected = 3 * (1.0 + 0.125) + 8 * 0.125
    assert spans[0] == (0.0, pytest.approx(expected))


def test_all_channels_released():
    route = [(chr(97 + i), chr(98 + i)) for i in range(5)]
    _, pool = run_windowed([route])
    for key in route:
        assert pool.channel(key).count == 0


def test_early_channels_release_before_completion():
    # A long route (12 hops) with an 8-flit worm: by the time the header
    # is at hop 12, hops 1..3 are free.  A second packet wanting hop 1
    # can start before the first finishes.
    long_route = [(i, i + 1) for i in range(12)]
    short_route = [(0, 1)]
    env = Environment()
    pool = ChannelPool(env)
    times = {}

    def sender(env, name, route, delay):
        yield env.timeout(delay)
        yield from transmit_windowed(env, pool, route, PARAMS)
        times[name] = env.now

    env.process(sender(env, "long", long_route, 0.0))
    env.process(sender(env, "short", short_route, 0.5))
    env.run()
    assert times["short"] < times["long"]


def test_path_model_is_more_conservative():
    # Same scenario under the hold-all model: the short packet waits
    # for the long one's full drain.
    long_route = [(i, i + 1) for i in range(12)]
    short_route = [(0, 1)]

    def run(tx):
        env = Environment()
        pool = ChannelPool(env)
        times = {}

        def sender(env, name, route, delay):
            yield env.timeout(delay)
            yield from tx(env, pool, route, PARAMS)
            times[name] = env.now

        env.process(sender(env, "long", long_route, 0.0))
        env.process(sender(env, "short", short_route, 0.5))
        env.run()
        return times

    windowed = run(transmit_windowed)
    held = run(transmit)
    assert windowed["short"] < held["short"]


def test_short_route_holds_everything_until_drain():
    # Route shorter than the worm: behaves like the path model plus
    # header flit pacing.
    route = [("a", "b"), ("b", "c")]
    spans, _ = run_windowed([route, route])
    spans.sort()
    # Second packet cannot start hop 1 before the first fully drains.
    first_end = spans[0][1]
    assert spans[1][1] > first_end


def test_simulator_channel_model_validation():
    from repro.mcast import MulticastSimulator
    from repro.network import build_irregular_network, UpDownRouter

    topo = build_irregular_network(n_switches=4, switch_ports=6, hosts_per_switch=2, seed=0)
    with pytest.raises(ValueError, match="channel_model"):
        MulticastSimulator(topo, UpDownRouter(topo), channel_model="bogus")
