"""Oblivious multipath up*/down* routing."""

from __future__ import annotations

import itertools

import pytest

from repro.network import build_irregular_network
from repro.network.updown import MultipathUpDownRouter, UpDownRouter


@pytest.fixture(scope="module")
def net():
    topo = build_irregular_network(seed=0)
    return topo, UpDownRouter(topo), MultipathUpDownRouter(topo, n_paths=4)


def legal(router, route):
    descending = False
    for (u, v) in route:
        if u[0] != "switch" or v[0] != "switch":
            continue
        up = router.is_up(u, v)
        if descending and up:
            return False
        descending = descending or not up
    return True


def test_n_paths_validation():
    topo = build_irregular_network(seed=1)
    with pytest.raises(ValueError):
        MultipathUpDownRouter(topo, n_paths=0)


def test_all_alternates_shortest_and_legal(net):
    topo, single, multi = net
    for a, b in itertools.islice(itertools.permutations(topo.hosts, 2), 0, 800, 13):
        base_len = len(single.route(a, b))
        seen = set()
        for _ in range(8):
            route = multi.route(a, b)
            seen.add(tuple(route))
            assert len(route) == base_len
            assert route[0][0] == a and route[-1][1] == b
            assert legal(single, route)
        assert 1 <= len(seen) <= 4


def test_rotation_cycles_deterministically(net):
    topo, _, multi = net
    # Find a pair with >= 2 alternates, then confirm the cycle repeats.
    for a, b in itertools.permutations(topo.hosts, 2):
        probe = [tuple(multi.route(a, b)) for _ in range(8)]
        k = len(set(probe))
        if k > 1:
            calls = [tuple(multi.route(a, b)) for _ in range(3 * k)]
            # Periodic with period k = number of alternates.
            for i in range(len(calls) - k):
                assert calls[i] == calls[i + k]
            return
    pytest.skip("topology has no multipath pairs")


def test_some_pairs_have_alternates(net):
    topo, _, multi = net
    found = 0
    for a, b in itertools.islice(itertools.permutations(topo.hosts, 2), 0, 2000, 7):
        if len({tuple(multi.route(a, b)) for _ in range(6)}) > 1:
            found += 1
    assert found > 10


def test_n_paths_one_matches_base_router(net):
    topo, single, _ = net
    one = MultipathUpDownRouter(topo, n_paths=1)
    for a, b in itertools.islice(itertools.permutations(topo.hosts, 2), 0, 200, 11):
        r1 = one.route(a, b)
        r2 = one.route(a, b)
        assert r1 == r2  # no rotation with a single path
        assert len(r1) == len(single.route(a, b))


def test_simulation_completes_with_multipath(net):
    from repro.core import build_kbinomial_tree
    from repro.mcast import MulticastSimulator, cco_ordering, chain_for

    topo, single, multi = net
    base = cco_ordering(topo, single)
    chain = chain_for(base[0], base[1:17], base)
    tree = build_kbinomial_tree(chain, 2)
    result = MulticastSimulator(topo, multi).run(tree, 8)
    assert len(result.destination_completion) == 16
