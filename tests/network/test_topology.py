"""Topology construction and query invariants."""

from __future__ import annotations

import pytest

from repro.network import Topology, TopologyError, host, switch


@pytest.fixture
def two_switches():
    t = Topology(switch_ports=4)
    t.add_switch(0)
    t.add_switch(1)
    t.add_link(switch(0), switch(1))
    return t


def test_node_constructors():
    assert host(3) == ("host", 3)
    assert switch(5) == ("switch", 5)


def test_add_duplicate_switch_rejected():
    t = Topology()
    t.add_switch(0)
    with pytest.raises(TopologyError):
        t.add_switch(0)


def test_add_host_to_missing_switch_rejected():
    t = Topology()
    with pytest.raises(TopologyError):
        t.add_host(0, switch(0))


def test_add_host_to_host_rejected(two_switches):
    two_switches.add_host(0, switch(0))
    with pytest.raises(TopologyError):
        two_switches.add_host(1, host(0))


def test_duplicate_host_rejected(two_switches):
    two_switches.add_host(0, switch(0))
    with pytest.raises(TopologyError):
        two_switches.add_host(0, switch(1))


def test_self_link_rejected(two_switches):
    with pytest.raises(TopologyError):
        two_switches.add_link(switch(0), switch(0))


def test_duplicate_link_rejected(two_switches):
    with pytest.raises(TopologyError):
        two_switches.add_link(switch(0), switch(1))


def test_host_to_host_link_rejected(two_switches):
    two_switches.add_host(0, switch(0))
    two_switches.add_host(1, switch(1))
    with pytest.raises(TopologyError):
        two_switches.add_link(host(0), host(1))


def test_port_limit_enforced():
    t = Topology(switch_ports=2)
    t.add_switch(0)
    t.add_host(0, switch(0))
    t.add_host(1, switch(0))
    with pytest.raises(TopologyError):
        t.add_host(2, switch(0))


def test_port_limit_counts_switch_links():
    t = Topology(switch_ports=1)
    for j in range(3):
        t.add_switch(j)
    t.add_link(switch(0), switch(1))
    with pytest.raises(TopologyError):
        t.add_link(switch(0), switch(2))


def test_host_switch_lookup(two_switches):
    two_switches.add_host(7, switch(1))
    assert two_switches.host_switch(host(7)) == switch(1)


def test_host_switch_of_switch_rejected(two_switches):
    with pytest.raises(TopologyError):
        two_switches.host_switch(switch(0))


def test_neighbors_and_partitions(two_switches):
    two_switches.add_host(0, switch(0))
    assert set(two_switches.neighbors(switch(0))) == {switch(1), host(0)}
    assert two_switches.switch_neighbors(switch(0)) == (switch(1),)
    assert two_switches.attached_hosts(switch(0)) == (host(0),)


def test_degree_and_free_ports(two_switches):
    assert two_switches.degree(switch(0)) == 1
    assert two_switches.free_ports(switch(0)) == 3


def test_channels_are_directed_pairs(two_switches):
    chans = set(two_switches.channels())
    assert (switch(0), switch(1)) in chans
    assert (switch(1), switch(0)) in chans


def test_has_link_symmetric(two_switches):
    assert two_switches.has_link(switch(0), switch(1))
    assert two_switches.has_link(switch(1), switch(0))


def test_connectivity_detection():
    t = Topology()
    t.add_switch(0)
    t.add_switch(1)
    assert not t.is_connected()
    t.add_link(switch(0), switch(1))
    assert t.is_connected()


def test_empty_topology_is_connected():
    assert Topology().is_connected()
