"""Wormhole transmission: timing, blocking, back-pressure, accounting."""

from __future__ import annotations

import pytest

from repro.network import ChannelPool, path_latency, transmit
from repro.params import SystemParams
from repro.sim import Environment

PARAMS = SystemParams(t_switch=1.0, link_bandwidth=64.0, packet_bytes=64)  # wire_time = 1


def run_transfers(routes, starts=None, params=PARAMS):
    """Run one transmit per route; return list of (start, end) times."""
    env = Environment()
    pool = ChannelPool(env)
    spans = []

    def sender(env, route, delay):
        yield env.timeout(delay)
        begin = env.now
        yield from transmit(env, pool, route, params)
        spans.append((begin, env.now))

    starts = starts or [0.0] * len(routes)
    for route, delay in zip(routes, starts):
        env.process(sender(env, route, delay))
    env.run()
    return spans, pool


def test_uncontended_latency():
    spans, _ = run_transfers([[("a", "b"), ("b", "c")]])
    # 2 hops * t_switch + wire_time = 3.
    assert spans == [(0.0, 3.0)]


def test_path_latency_helper_matches_simulation():
    route = [("a", "b"), ("b", "c"), ("c", "d")]
    spans, _ = run_transfers([route])
    assert spans[0][1] == path_latency(len(route), PARAMS)


def test_path_latency_validation():
    with pytest.raises(ValueError):
        path_latency(0, PARAMS)


def test_empty_route_rejected():
    env = Environment()
    pool = ChannelPool(env)
    with pytest.raises(ValueError):
        list(transmit(env, pool, [], PARAMS))


def test_shared_channel_serializes():
    route = [("a", "b")]
    spans, _ = run_transfers([route, route])
    spans.sort()
    # Each needs t_switch + wire = 2; second waits for first's release.
    assert spans == [(0.0, 2.0), (0.0, 4.0)]


def test_disjoint_channels_run_in_parallel():
    spans, _ = run_transfers([[("a", "b")], [("c", "d")]])
    assert spans == [(0.0, 2.0), (0.0, 2.0)]


def test_backpressure_holds_earlier_links():
    # P1 holds (b,c) for a long transfer; P2's route is (a,b),(b,c):
    # P2 acquires (a,b), blocks on (b,c), and a third packet wanting
    # (a,b) must wait for P2's entire transfer (wormhole back-pressure).
    env = Environment()
    pool = ChannelPool(env)
    log = {}

    def sender(env, name, route, delay):
        yield env.timeout(delay)
        yield from transmit(env, pool, route, PARAMS)
        log[name] = env.now

    env.process(sender(env, "blocker", [("b", "c")], 0.0))
    env.process(sender(env, "middle", [("a", "b"), ("b", "c")], 0.5))
    env.process(sender(env, "tail", [("a", "b")], 0.6))
    env.run()
    # blocker: 0 -> 2.  middle: acquires (a,b) at 0.5 (+1 switch), waits
    # for (b,c) until 2, +1 switch +1 wire -> 4.  tail: (a,b) frees at 4,
    # then +1 +1 -> 6.
    assert log["blocker"] == 2.0
    assert log["middle"] == 4.0
    assert log["tail"] == 6.0


def test_channels_released_after_tail():
    spans, pool = run_transfers([[("a", "b"), ("b", "c")]])
    for res in (pool.channel(("a", "b")), pool.channel(("b", "c"))):
        assert res.count == 0


def test_acquisition_accounting():
    route = [("a", "b")]
    _, pool = run_transfers([route, route])
    assert pool.acquisitions[("a", "b")] == 2
    assert pool.blocked_time[("a", "b")] == pytest.approx(2.0)
    assert pool.total_blocked_time == pytest.approx(2.0)


def test_busiest_channel():
    _, pool = run_transfers([[("a", "b")], [("a", "b")], [("c", "d")]])
    key, count = pool.busiest_channel
    assert key == ("a", "b") and count == 2


def test_empty_pool_busiest_is_none():
    env = Environment()
    assert ChannelPool(env).busiest_channel is None


def test_channel_lazily_created_once():
    env = Environment()
    pool = ChannelPool(env)
    assert pool.channel("x") is pool.channel("x")


def test_vc_keys_are_distinct_channels():
    # (u, v, 0) and (u, v, 1) do not contend.
    spans, _ = run_transfers([[("a", "b", 0)], [("a", "b", 1)]])
    assert spans == [(0.0, 2.0), (0.0, 2.0)]
