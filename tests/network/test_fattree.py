"""Fat-tree topology and routing."""

from __future__ import annotations

import itertools

import pytest

from repro.network import FatTree, FatTreeRouter, RoutingError, TopologyError, host


@pytest.fixture(scope="module")
def ft():
    tree = FatTree(levels=3, arity=4, hosts_per_leaf=4)
    return tree, FatTreeRouter(tree)


class TestConstruction:
    def test_sizes(self, ft):
        tree, _ = ft
        # 1 + 4 + 16 switches, 16 leaves x 4 hosts.
        assert len(tree.switches) == 21
        assert len(tree.leaf_switches) == 16
        assert len(tree.hosts) == 64

    def test_connected(self, ft):
        tree, _ = ft
        assert tree.is_connected()

    def test_levels(self, ft):
        tree, _ = ft
        assert tree.level_of(tree.root_switch) == 0
        assert all(tree.level_of(leaf) == 2 for leaf in tree.leaf_switches)

    def test_single_switch_tree(self):
        tree = FatTree(levels=1, arity=2, hosts_per_leaf=3)
        assert len(tree.switches) == 1
        assert len(tree.hosts) == 3
        assert tree.leaf_switches == (tree.root_switch,)

    def test_validation(self):
        with pytest.raises(TopologyError):
            FatTree(levels=0)
        with pytest.raises(TopologyError):
            FatTree(arity=1)
        with pytest.raises(TopologyError):
            FatTree(hosts_per_leaf=0)
        with pytest.raises(TopologyError):
            FatTree(trunks=0)


class TestRouting:
    def test_same_leaf_two_hops(self, ft):
        tree, router = ft
        h0, h1 = tree.attached_hosts(tree.leaf_switches[0])[:2]
        assert router.hop_count(h0, h1) == 2

    def test_cross_tree_goes_through_lca(self, ft):
        tree, router = ft
        a = tree.attached_hosts(tree.leaf_switches[0])[0]
        b = tree.attached_hosts(tree.leaf_switches[15])[0]
        # Up 2, down 2, plus 2 host links.
        assert router.hop_count(a, b) == 6

    def test_sibling_leaves_meet_at_level1(self, ft):
        tree, router = ft
        a = tree.attached_hosts(tree.leaf_switches[0])[0]
        b = tree.attached_hosts(tree.leaf_switches[1])[0]
        # Leaves 0 and 1 share a level-1 parent: up 1, down 1, hosts 2.
        assert router.hop_count(a, b) == 4

    def test_route_chain_connected(self, ft):
        tree, router = ft
        for a, b in itertools.islice(itertools.permutations(tree.hosts[::13], 2), 20):
            route = router.route(a, b)
            assert route[0][0] == a and route[-1][1] == b
            for (u1, v1, _), (u2, v2, _) in zip(route, route[1:]):
                assert v1 == u2

    def test_self_route_rejected(self, ft):
        _, router = ft
        with pytest.raises(RoutingError):
            router.route(host(0), host(0))

    def test_cached(self, ft):
        tree, router = ft
        a, b = tree.hosts[0], tree.hosts[40]
        assert router.route(a, b) is router.route(a, b)


class TestTrunks:
    def test_pairs_spread_across_trunks(self):
        tree = FatTree(levels=2, arity=4, hosts_per_leaf=4, trunks=4)
        router = FatTreeRouter(tree)
        trunks_used = set()
        for a, b in itertools.permutations(tree.hosts, 2):
            for (u, v, t) in router.route(a, b):
                if u[0] == "switch" and v[0] == "switch":
                    trunks_used.add(t)
        assert trunks_used == {0, 1, 2, 3}

    def test_pair_uses_single_trunk(self):
        tree = FatTree(levels=3, arity=2, hosts_per_leaf=2, trunks=3)
        router = FatTreeRouter(tree)
        a, b = tree.hosts[0], tree.hosts[-1]
        trunk_ids = {
            t for (u, v, t) in router.route(a, b) if u[0] == "switch" and v[0] == "switch"
        }
        assert len(trunk_ids) == 1


class TestMulticast:
    def test_machine_fat_tree_multicast(self):
        from repro import Machine

        machine = Machine.fat_tree(levels=3, arity=4, hosts_per_leaf=4)
        assert len(machine.hosts) == 64
        result = machine.multicast(machine.hosts[0], machine.hosts[1:32], nbytes=512)
        assert result.latency > 0

    def test_trunks_relieve_root_contention(self):
        from repro import Machine

        slim = Machine.fat_tree(levels=3, arity=4, hosts_per_leaf=4, trunks=1)
        fat = Machine.fat_tree(levels=3, arity=4, hosts_per_leaf=4, trunks=4)
        # Broadcast crosses the root heavily; trunking must not hurt
        # and usually helps.
        src = slim.hosts[0]
        slim_lat = slim.broadcast(src, 1024).latency
        fat_lat = fat.broadcast(src, 1024).latency
        assert fat_lat <= slim_lat

    def test_kbinomial_beats_binomial_on_fat_tree(self):
        from repro import Machine

        machine = Machine.fat_tree(levels=3, arity=4, hosts_per_leaf=4, trunks=2)
        src = machine.hosts[0]
        kbin = machine.broadcast(src, 2048).latency
        bino = machine.broadcast(src, 2048, tree="binomial").latency
        assert kbin < bino