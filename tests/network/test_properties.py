"""Property-based tests on the network substrate: routing invariants and
deadlock-freedom under random traffic."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network import (
    ChannelPool,
    EcubeRouter,
    KAryNCube,
    UpDownRouter,
    build_irregular_network,
    transmit,
)
from repro.params import SystemParams
from repro.sim import Environment

PARAMS = SystemParams()


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_irregular_generator_invariants(seed):
    topo = build_irregular_network(seed=seed)
    assert topo.is_connected()
    assert len(topo.hosts) == 64 and len(topo.switches) == 16
    for sw in topo.switches:
        assert topo.degree(sw) <= 8
        assert len(topo.attached_hosts(sw)) == 4


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000), pair_seed=st.integers(0, 1000))
def test_updown_routes_legal_and_connected(seed, pair_seed):
    topo = build_irregular_network(seed=seed)
    router = UpDownRouter(topo)
    rng = random.Random(pair_seed)
    hosts = list(topo.hosts)
    for _ in range(20):
        a, b = rng.sample(hosts, 2)
        route = router.route(a, b)
        # Connected chain from a to b.
        assert route[0][0] == a and route[-1][1] == b
        for (u1, v1), (u2, v2) in zip(route, route[1:]):
            assert v1 == u2
        # Legality: up* then down*.
        descending = False
        for (u, v) in route[1:-1]:
            up = router.is_up(u, v)
            assert not (descending and up)
            descending = descending or not up


@settings(max_examples=10, deadline=None)
@given(
    k=st.integers(min_value=2, max_value=5),
    n=st.integers(min_value=1, max_value=3),
    pair_seed=st.integers(0, 1000),
)
def test_ecube_routes_minimal(k, n, pair_seed):
    cube = KAryNCube(k, n)
    router = EcubeRouter(cube)
    rng = random.Random(pair_seed)
    hosts = list(cube.hosts)
    for _ in range(15):
        a, b = rng.sample(hosts, 2)
        route = router.route(a, b)
        dist = sum(
            min((cb - ca) % k, (ca - cb) % k)
            for ca, cb in zip(cube.coords(a[1]), cube.coords(b[1]))
        )
        assert len(route) == dist + 2


@pytest.mark.parametrize("seed", range(3))
def test_random_traffic_quiesces_on_irregular_network(seed):
    """Deadlock-freedom stress: 200 random transfers all complete."""
    topo = build_irregular_network(seed=seed)
    router = UpDownRouter(topo)
    env = Environment()
    pool = ChannelPool(env)
    done = []
    rng = random.Random(seed)
    hosts = list(topo.hosts)

    def sender(env, a, b, delay):
        yield env.timeout(delay)
        yield from transmit(env, pool, router.route(a, b), PARAMS)
        done.append((a, b))

    for _ in range(200):
        a, b = rng.sample(hosts, 2)
        env.process(sender(env, a, b, rng.uniform(0, 5)))
    env.run()
    assert len(done) == 200  # quiesced with every transfer delivered


@pytest.mark.parametrize("k,n", [(4, 2), (3, 3)])
def test_random_traffic_quiesces_on_torus(k, n):
    """Dateline VCs keep dimension-ordered wormhole traffic deadlock-free."""
    cube = KAryNCube(k, n)
    router = EcubeRouter(cube)
    env = Environment()
    pool = ChannelPool(env)
    done = []
    rng = random.Random(9)
    hosts = list(cube.hosts)

    def sender(env, a, b, delay):
        yield env.timeout(delay)
        yield from transmit(env, pool, router.route(a, b), PARAMS)
        done.append((a, b))

    for _ in range(200):
        a, b = rng.sample(hosts, 2)
        env.process(sender(env, a, b, rng.uniform(0, 5)))
    env.run()
    assert len(done) == 200
