"""k-ary n-cube construction and coordinate arithmetic."""

from __future__ import annotations

import pytest

from repro.network import KAryNCube, TopologyError, host, switch


def test_size():
    assert KAryNCube(4, 3).size == 64
    assert KAryNCube(2, 4).size == 16


def test_invalid_parameters():
    with pytest.raises(TopologyError):
        KAryNCube(1, 2)
    with pytest.raises(TopologyError):
        KAryNCube(4, 0)


def test_coords_roundtrip():
    c = KAryNCube(5, 3)
    for p in range(c.size):
        assert c.processor(c.coords(p)) == p


def test_coords_dimension_zero_fastest():
    c = KAryNCube(4, 2)
    assert c.coords(1) == (1, 0)
    assert c.coords(4) == (0, 1)


def test_coords_out_of_range():
    c = KAryNCube(3, 2)
    with pytest.raises(TopologyError):
        c.coords(9)
    with pytest.raises(TopologyError):
        c.processor((3, 0))
    with pytest.raises(TopologyError):
        c.processor((0, 0, 0))


def test_neighbor_wraps():
    c = KAryNCube(4, 1)
    assert c.neighbor(3, 0, +1) == 0
    assert c.neighbor(0, 0, -1) == 3


def test_torus_degree():
    c = KAryNCube(4, 2)
    for sw in c.switches:
        # 2 links per dimension + 1 host.
        assert c.degree(sw) == 5


def test_mesh_has_no_wrap_links():
    c = KAryNCube(4, 2, wrap=False)
    assert not c.has_link(switch(0), switch(3))  # row wrap absent
    assert c.has_link(switch(0), switch(1))


def test_k2_has_single_link_per_dimension():
    # k=2: +1 and -1 reach the same node; only one link must exist.
    c = KAryNCube(2, 2)
    for sw in c.switches:
        assert c.degree(sw) == 3  # 2 dims + host


def test_each_processor_owns_one_host():
    c = KAryNCube(3, 2)
    assert len(c.hosts) == 9
    for p in range(9):
        assert c.host_switch(host(p)) == switch(p)


def test_connected():
    assert KAryNCube(4, 3).is_connected()
    assert KAryNCube(3, 2, wrap=False).is_connected()
