"""Dimension-ordered routing with dateline virtual channels."""

from __future__ import annotations

import itertools

import pytest

from repro.network import EcubeRouter, KAryNCube, RoutingError, host


@pytest.fixture(scope="module")
def torus():
    cube = KAryNCube(4, 2)
    return cube, EcubeRouter(cube)


def test_route_endpoints(torus):
    cube, r = torus
    route = r.route(host(0), host(10))
    assert route[0][0] == host(0)
    assert route[-1][1] == host(10)


def test_route_to_self_rejected(torus):
    _, r = torus
    with pytest.raises(RoutingError):
        r.route(host(3), host(3))


def test_dimension_order_respected(torus):
    cube, r = torus
    for a, b in itertools.permutations(cube.hosts[:8], 2):
        route = r.route(a, b)
        dims = []
        for (u, v, _vc) in route:
            if u[0] != "switch" or v[0] != "switch":
                continue
            cu, cv = cube.coords(u[1]), cube.coords(v[1])
            (dim,) = [d for d in range(cube.n) if cu[d] != cv[d]]
            dims.append(dim)
        assert dims == sorted(dims)


def test_minimal_wrap_direction():
    cube = KAryNCube(5, 1)
    r = EcubeRouter(cube)
    # 0 -> 4 is shorter backwards around the ring: 1 switch hop.
    route = r.route(host(0), host(4))
    switch_hops = [c for c in route if c[0][0] == "switch" and c[1][0] == "switch"]
    assert len(switch_hops) == 1


def test_half_ring_tie_goes_positive():
    cube = KAryNCube(4, 1)
    r = EcubeRouter(cube)
    route = r.route(host(0), host(2))  # distance 2 both ways
    first_hop = [c for c in route if c[0][0] == "switch"][0]
    assert first_hop[1][1] == 1  # 0 -> 1 -> 2, positive direction


def test_dateline_vc_switching():
    cube = KAryNCube(5, 1)
    r = EcubeRouter(cube)
    # 3 -> 0 forward: 3 -> 4 -> 0; the 4 -> 0 hop crosses the dateline.
    route = r.route(host(3), host(0))
    vcs = [vc for (u, v, vc) in route if u[0] == "switch" and v[0] == "switch"]
    assert vcs == [0, 1]


def test_no_wrap_means_vc0_everywhere():
    cube = KAryNCube(4, 2, wrap=False)
    r = EcubeRouter(cube)
    for a, b in itertools.permutations(cube.hosts[:6], 2):
        assert all(vc == 0 for (_, _, vc) in r.route(a, b))


def test_mesh_routes_never_wrap():
    cube = KAryNCube(4, 1, wrap=False)
    r = EcubeRouter(cube)
    route = r.route(host(0), host(3))
    switch_hops = [c for c in route if c[0][0] == "switch" and c[1][0] == "switch"]
    assert len(switch_hops) == 3  # 0->1->2->3, no shortcut


def test_route_cached(torus):
    _, r = torus
    assert r.route(host(1), host(2)) is r.route(host(1), host(2))


def test_all_pairs_reachable(torus):
    cube, r = torus
    for a, b in itertools.permutations(cube.hosts, 2):
        route = r.route(a, b)
        # Hop count = 2 host links + Manhattan-on-ring distance.
        ca, cb = cube.coords(a[1]), cube.coords(b[1])
        dist = sum(min((cb[d] - ca[d]) % 4, (ca[d] - cb[d]) % 4) for d in range(2))
        assert len(route) == 2 + dist


def test_hop_count_matches_route(torus):
    _, r = torus
    assert r.hop_count(host(0), host(5)) == len(r.route(host(0), host(5)))


def test_channel_chain_is_connected(torus):
    _, r = torus
    route = r.route(host(0), host(15))
    for (u1, v1, _), (u2, v2, _) in zip(route, route[1:]):
        assert v1 == u2
