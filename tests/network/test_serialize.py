"""Topology serialization round trips."""

from __future__ import annotations

import json

import pytest

from repro.mcast import cco_ordering
from repro.network import (
    TopologyError,
    UpDownRouter,
    build_irregular_network,
    topology_from_dict,
    topology_to_dict,
)


def test_round_trip_preserves_structure():
    original = build_irregular_network(seed=5)
    rebuilt = topology_from_dict(topology_to_dict(original))
    assert set(rebuilt.hosts) == set(original.hosts)
    assert set(rebuilt.switches) == set(original.switches)
    assert set(rebuilt.channels()) == set(original.channels())
    assert rebuilt.switch_ports == original.switch_ports


def test_round_trip_is_json_safe():
    original = build_irregular_network(seed=3)
    payload = json.dumps(topology_to_dict(original))
    rebuilt = topology_from_dict(json.loads(payload))
    assert set(rebuilt.channels()) == set(original.channels())


def test_round_trip_preserves_host_attachment_order():
    original = build_irregular_network(seed=7)
    rebuilt = topology_from_dict(topology_to_dict(original))
    for sw in original.switches:
        assert rebuilt.attached_hosts(sw) == original.attached_hosts(sw)


def test_routing_identical_after_reload():
    original = build_irregular_network(seed=9)
    rebuilt = topology_from_dict(topology_to_dict(original))
    r1 = UpDownRouter(original)
    r2 = UpDownRouter(rebuilt)
    hosts = original.hosts
    for a, b in [(hosts[0], hosts[50]), (hosts[13], hosts[7]), (hosts[63], hosts[1])]:
        assert r1.route(a, b) == r2.route(a, b)


def test_cco_identical_after_reload():
    original = build_irregular_network(seed=11)
    rebuilt = topology_from_dict(topology_to_dict(original))
    assert cco_ordering(original, UpDownRouter(original)) == cco_ordering(
        rebuilt, UpDownRouter(rebuilt)
    )


def test_unknown_format_rejected():
    with pytest.raises(TopologyError):
        topology_from_dict({"format": "something-else"})
