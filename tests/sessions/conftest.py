"""Shared fixtures for the sessions suite: a fast contention-rich fabric."""

from __future__ import annotations

import pytest

from repro.network import Topology, UpDownRouter, host, switch
from repro.params import SystemParams

#: Step-aligned timing (one send = 2 units) — fast, hand-checkable runs.
STEP_PARAMS = SystemParams(
    t_s=0.0,
    t_r=0.0,
    t_ns=1.0,
    t_nr=0.0,
    t_switch=0.0,
    link_bandwidth=64.0,
    packet_bytes=64,
)

STAR_HOSTS = 12


def star(n_hosts: int):
    """Single-switch star: pairwise-disjoint routes between distinct pairs."""
    topo = Topology()
    topo.add_switch(0)
    for i in range(n_hosts):
        topo.add_host(i, switch(0))
    return topo, UpDownRouter(topo)


@pytest.fixture(scope="module")
def star_fabric():
    """(topology, router, ordering) of the 12-host star."""
    topo, router = star(STAR_HOSTS)
    return topo, router, [host(i) for i in range(STAR_HOSTS)]
