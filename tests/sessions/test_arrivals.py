"""Arrival generators: determinism, bounds, shape of each process."""

from __future__ import annotations

import pytest

from repro.sessions import (
    batch_sessions,
    flash_crowd_sessions,
    generate_sessions,
    poisson_sessions,
)

HOSTS = list(range(16))


class TestDeterminism:
    def test_same_seed_same_sessions(self):
        kw = dict(count=8, rate=0.05, dests=3, packets=4)
        assert poisson_sessions(HOSTS, seed=7, **kw) == poisson_sessions(HOSTS, seed=7, **kw)

    def test_different_seeds_differ(self):
        kw = dict(count=8, rate=0.05, dests=3, packets=4)
        assert poisson_sessions(HOSTS, seed=1, **kw) != poisson_sessions(HOSTS, seed=2, **kw)

    def test_kinds_use_independent_streams(self):
        a = batch_sessions(HOSTS, count=4, dests=3, packets=2, seed=5)
        b = flash_crowd_sessions(HOSTS, count=4, max_dests=3, packets=2, seed=5)
        assert [s.destinations for s in a] != [s.destinations for s in b]


class TestShapes:
    def test_poisson_arrivals_strictly_increase(self):
        sessions = poisson_sessions(HOSTS, count=10, rate=0.1, dests=2, packets=1, seed=0)
        times = [s.arrival_time for s in sessions]
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_batch_all_arrive_together_by_default(self):
        sessions = batch_sessions(HOSTS, count=5, dests=2, packets=1, seed=0)
        assert {s.arrival_time for s in sessions} == {0.0}

    def test_batch_spacing_staggers(self):
        sessions = batch_sessions(HOSTS, count=4, dests=2, packets=1, seed=0, spacing=10.0)
        assert [s.arrival_time for s in sessions] == [0.0, 10.0, 20.0, 30.0]

    def test_flash_crowd_fits_window_and_bounds(self):
        sessions = flash_crowd_sessions(
            HOSTS, count=20, max_dests=7, packets=2, seed=3, window=25.0
        )
        assert all(0.0 <= s.arrival_time <= 25.0 for s in sessions)
        assert all(1 <= len(s.destinations) <= 7 for s in sessions)
        # Zipf over sizes: small groups must dominate a 20-draw sample.
        small = sum(1 for s in sessions if len(s.destinations) <= 3)
        assert small > len(sessions) / 2

    def test_ids_are_dense_and_ordered(self):
        sessions = flash_crowd_sessions(
            HOSTS, count=6, max_dests=4, packets=1, seed=0, window=10.0
        )
        assert [s.session_id for s in sessions] == list(range(6))

    def test_sources_never_in_destinations(self):
        for kind, kw in (
            ("poisson", dict(count=12, rate=0.1, dests=5, packets=1)),
            ("batch", dict(count=12, dests=5, packets=1)),
            ("flash_crowd", dict(count=12, max_dests=5, packets=1, window=5.0)),
        ):
            for s in generate_sessions(kind, HOSTS, seed=9, **kw):
                assert s.source not in s.destinations


class TestValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown arrival process"):
            generate_sessions("bursty", HOSTS, count=1, dests=1, packets=1, seed=0)

    def test_bad_rate_window_dests_rejected(self):
        with pytest.raises(ValueError, match="rate"):
            poisson_sessions(HOSTS, count=1, rate=0.0, dests=1, packets=1, seed=0)
        with pytest.raises(ValueError, match="window"):
            flash_crowd_sessions(HOSTS, count=1, max_dests=1, packets=1, seed=0, window=-1.0)
        with pytest.raises(ValueError, match="dests"):
            batch_sessions(HOSTS, count=1, dests=len(HOSTS), packets=1, seed=0)
