"""SessionSimulator end to end: contention, admission, metrics, tracing."""

from __future__ import annotations

import pytest

from repro.faults.schedule import FaultEvent, FaultSchedule
from repro.network import host
from repro.obs import GLOBAL_METRICS, Tracer
from repro.sessions import (
    SESSION_METRICS,
    Session,
    SessionSimulator,
)

from .conftest import STEP_PARAMS


def sim_of(star_fabric, **kwargs):
    topo, router, ordering = star_fabric
    kwargs.setdefault("params", STEP_PARAMS)
    return SessionSimulator(topo, router, ordering, **kwargs)


def three_sessions():
    return [
        Session(source=host(0), destinations=(host(1), host(2), host(3),), num_packets=2, arrival_time=0.0, session_id=0),
        Session(source=host(4), destinations=(host(5), host(6),), num_packets=2, arrival_time=1.0, session_id=1),
        Session(source=host(7), destinations=(host(8), host(9),), num_packets=1, arrival_time=2.0, session_id=2),
    ]


class TestBasicRuns:
    def test_all_sessions_complete(self, star_fabric):
        result = sim_of(star_fabric).run_sessions(three_sessions())
        assert len(result.results) == 3
        for r in result.results:
            assert r.latency > 0
            assert r.admitted_at >= r.session.arrival_time
            assert r.queueing_delay >= 0.0

    def test_results_in_canonical_fifo_order(self, star_fabric):
        shuffled = list(reversed(three_sessions()))
        result = sim_of(star_fabric).run_sessions(shuffled)
        assert [r.session.session_id for r in result.results] == [0, 1, 2]

    def test_unbounded_admission_admits_on_arrival(self, star_fabric):
        result = sim_of(star_fabric, max_active=None).run_sessions(three_sessions())
        for r in result.results:
            assert r.admitted_at == r.session.arrival_time
            assert r.queueing_delay == 0.0

    def test_max_active_one_serializes(self, star_fabric):
        sim = sim_of(star_fabric, max_active=1)
        sim.run_sessions(three_sessions())
        log = sim.last_arbiter.log
        active = 0
        for _, kind, _sid in log:
            if kind == "admit":
                active += 1
                assert active <= 1
            elif kind == "complete":
                active -= 1

    def test_work_conservation_log_is_clean(self, star_fabric):
        for max_active in (1, 2, None):
            sim = sim_of(star_fabric, max_active=max_active)
            sim.run_sessions(three_sessions())
            assert sim.last_arbiter.work_conservation_violations() == []

    def test_per_session_k_override_respected(self, star_fabric):
        sim = sim_of(star_fabric)
        session = Session(source=host(0), destinations=(host(1), host(2), host(3), host(4),), num_packets=1, k=1)
        plan = sim.plan_session(session)
        assert plan.k == 1
        assert plan.tree.root_fanout == 1

    def test_makespan_spans_first_arrival_to_last_completion(self, star_fabric):
        result = sim_of(star_fabric).run_sessions(three_sessions())
        last = max(r.result.completion_time for r in result.results)
        assert result.makespan == pytest.approx(last + STEP_PARAMS.t_r - 0.0)


class TestContention:
    def test_two_sessions_on_contended_source_slow_down(self, star_fabric):
        """Acceptance: sharing a link costs vs two isolated runs."""
        sessions = [
            Session(source=host(0), destinations=(host(1), host(2), host(3), host(4),), num_packets=4, session_id=0),
            Session(source=host(0), destinations=(host(5), host(6), host(7), host(8),), num_packets=4, session_id=1),
        ]
        result = sim_of(star_fabric, max_active=None).run_sessions(
            sessions, measure_isolated=True
        )
        # Both start at t=0 from the same source NI: its single send
        # engine serializes them, so at least one must finish later
        # than it would alone — measurably, not marginally.
        assert result.max_slowdown > 1.2
        for r in result.results:
            assert r.latency >= r.isolated_latency - 1e-9

    def test_disjoint_sessions_on_star_do_not_interfere(self, star_fabric):
        sessions = [
            Session(source=host(0), destinations=(host(1), host(2),), num_packets=2, session_id=0),
            Session(source=host(3), destinations=(host(4), host(5),), num_packets=2, session_id=1),
        ]
        result = sim_of(star_fabric, max_active=None).run_sessions(
            sessions, measure_isolated=True
        )
        # Star routes of disjoint host pairs share no channel: isolated
        # and concurrent latencies must agree exactly.
        for r in result.results:
            assert r.latency == r.isolated_latency

    def test_queueing_delay_appears_under_admission_cap(self, star_fabric):
        sessions = [
            Session(source=host(0), destinations=(host(1), host(2), host(3),), num_packets=4, session_id=0),
            Session(source=host(4), destinations=(host(5), host(6), host(7),), num_packets=4, session_id=1),
            Session(source=host(8), destinations=(host(9), host(10),), num_packets=4, session_id=2),
        ]
        result = sim_of(star_fabric, max_active=1).run_sessions(sessions)
        delays = [r.queueing_delay for r in result.results]
        assert delays[0] == 0.0
        assert delays[1] > 0.0 and delays[2] > delays[1]

    def test_stall_fault_slows_sessions_but_completes(self, star_fabric):
        sessions = three_sessions()
        clean = sim_of(star_fabric).run_sessions(sessions)
        schedule = FaultSchedule((
            FaultEvent(time=1.0, kind="ni_stall", target=host(0), duration=20.0),
        ))
        faulty = sim_of(star_fabric, schedule=schedule).run_sessions(sessions)
        assert len(faulty.results) == 3
        assert faulty.results[0].latency > clean.results[0].latency

    def test_time_limit_guards_against_livelock(self, star_fabric):
        with pytest.raises(RuntimeError, match="time_limit"):
            sim_of(star_fabric).run_sessions(three_sessions(), time_limit=0.5)


class TestValidation:
    def test_rejects_empty_and_duplicate_ids(self, star_fabric):
        sim = sim_of(star_fabric)
        with pytest.raises(ValueError, match="at least one session"):
            sim.run_sessions([])
        twin = Session(source=host(0), destinations=(host(1),), num_packets=1, session_id=5)
        other = Session(source=host(2), destinations=(host(3),), num_packets=1, session_id=5)
        with pytest.raises(ValueError, match="duplicate session ids"):
            sim.run_sessions([twin, other])

    def test_rejects_bad_max_active_and_scheduler(self, star_fabric):
        topo, router, ordering = star_fabric
        with pytest.raises(ValueError, match="max_active"):
            SessionSimulator(topo, router, ordering, max_active=0)
        with pytest.raises(ValueError, match="unknown scheduler"):
            SessionSimulator(topo, router, ordering, scheduler="edf")

    def test_rejects_foreign_ordering_node(self, star_fabric):
        topo, router, _ = star_fabric
        with pytest.raises(ValueError, match="not a host"):
            SessionSimulator(topo, router, ["nope"])


class TestObservability:
    def test_session_metrics_counters_and_gauges(self, star_fabric):
        SESSION_METRICS.reset()
        sim_of(star_fabric).run_sessions(three_sessions())
        snap = GLOBAL_METRICS.snapshot()["sessions"]
        assert snap["sessions_planned"] == 3
        assert snap["sessions_admitted"] == 3
        assert snap["sessions_completed"] == 3
        assert snap["runs"] == 1
        assert snap["sessions"] == 3.0
        for key in ("mean_latency", "p50_latency", "p95_latency", "p99_latency",
                    "mean_queueing", "makespan", "peak_link_sharing"):
            assert key in snap

    def test_metrics_reset_restores_zero(self, star_fabric):
        sim_of(star_fabric).run_sessions(three_sessions())
        SESSION_METRICS.reset()
        snap = SESSION_METRICS.snapshot()
        assert snap["runs"] == 0
        assert "mean_latency" not in snap

    def test_each_session_gets_named_trace_track(self, star_fabric):
        tracer = Tracer()
        sim_of(star_fabric, tracer=tracer).run_sessions(three_sessions())
        thread_names = {
            e.args["name"]
            for e in tracer.events
            if e.ph == "M" and e.name == "thread_name"
        }
        assert {"session 0", "session 1", "session 2"} <= thread_names

    def test_queued_span_emitted_for_delayed_admissions(self, star_fabric):
        tracer = Tracer()
        sessions = [
            Session(source=host(0), destinations=(host(1), host(2), host(3),), num_packets=4, session_id=0),
            Session(source=host(4), destinations=(host(5), host(6),), num_packets=2, session_id=1),
        ]
        sim_of(star_fabric, max_active=1, tracer=tracer).run_sessions(sessions)
        queued = [e for e in tracer.events if e.name == "queued"]
        assert len(queued) == 1


class TestSummary:
    def test_summary_is_flat_and_json_safe(self, star_fabric):
        import json

        result = sim_of(star_fabric).run_sessions(
            three_sessions(), measure_isolated=True
        )
        summary = result.summary()
        json.dumps(summary)
        assert summary["sessions"] == 3.0
        assert summary["mean_slowdown"] >= 1.0
        assert summary["p99_latency"] >= summary["p50_latency"]
