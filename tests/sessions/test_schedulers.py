"""Scheduler policies: pick order, registry, and fabric policy wiring."""

from __future__ import annotations

import pytest

from repro.core import build_kbinomial_tree
from repro.sessions import (
    SCHEDULERS,
    CongestionDilationScheduler,
    FifoScheduler,
    RoundRobinScheduler,
    Session,
    SessionPlan,
    ShortestSessionFirst,
    make_scheduler,
)


def plan_of(sid, *, arrival=0.0, dests=2, m=1, links=(), dilation=1):
    session = Session(
        source=100 + sid,
        destinations=tuple(range(200 + 10 * sid, 200 + 10 * sid + dests)),
        num_packets=m,
        arrival_time=arrival,
        session_id=sid,
    )
    tree = build_kbinomial_tree([session.source, *session.destinations], 2)
    return SessionPlan(
        session=session, tree=tree, k=2, links=frozenset(links), dilation=dilation
    )


class TestFifo:
    def test_picks_earliest_arrival(self):
        ready = [plan_of(0, arrival=5.0), plan_of(1, arrival=2.0)]
        assert FifoScheduler().pick(ready, [], {}) is ready[1]

    def test_ties_break_on_session_id(self):
        ready = [plan_of(3, arrival=1.0), plan_of(1, arrival=1.0)]
        assert FifoScheduler().pick(ready, [], {}) is ready[1]


class TestRoundRobin:
    def test_admission_order_matches_fifo(self):
        ready = [plan_of(0, arrival=9.0), plan_of(1, arrival=3.0)]
        assert RoundRobinScheduler().pick(ready, [], {}) is ready[1]

    def test_requests_round_robin_send_policy(self):
        assert RoundRobinScheduler.send_policy == "round_robin"
        assert FifoScheduler.send_policy == "fifo"


class TestShortestSessionFirst:
    def test_least_work_first(self):
        ready = [plan_of(0, dests=5, m=4), plan_of(1, dests=2, m=1)]
        assert ShortestSessionFirst().pick(ready, [], {}) is ready[1]

    def test_work_ties_fall_back_to_arrival(self):
        ready = [plan_of(0, arrival=8.0, dests=2, m=2), plan_of(1, arrival=1.0, dests=2, m=2)]
        assert ShortestSessionFirst().pick(ready, [], {}) is ready[1]


class TestCongestionDilationAware:
    def test_prefers_least_link_overlap(self):
        hot = plan_of(0, links=("a", "b"))
        cold = plan_of(1, links=("c", "d"))
        load = {"a": 2, "b": 1}
        assert CongestionDilationScheduler().pick([hot, cold], [], load) is cold

    def test_overlap_ties_break_on_dilation_then_work(self):
        shallow = plan_of(0, links=("x",), dilation=2, dests=4, m=2)
        deep = plan_of(1, links=("y",), dilation=6, dests=2, m=1)
        assert CongestionDilationScheduler().pick([shallow, deep], [], {}) is shallow
        lean = plan_of(2, links=("x",), dilation=2, dests=2, m=1)
        fat = plan_of(3, links=("y",), dilation=2, dests=4, m=2)
        assert CongestionDilationScheduler().pick([fat, lean], [], {}) is lean


class TestRegistry:
    def test_registry_names_match_classes(self):
        assert set(SCHEDULERS) == {"fifo", "rr", "sjf", "cda"}
        for name, cls in SCHEDULERS.items():
            assert cls.name == name

    def test_make_scheduler_from_name_and_instance(self):
        assert isinstance(make_scheduler("sjf"), ShortestSessionFirst)
        instance = CongestionDilationScheduler()
        assert make_scheduler(instance) is instance

    def test_make_scheduler_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown scheduler"):
            make_scheduler("priority")
