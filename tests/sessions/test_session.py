"""Session/result dataclasses: validation, derived fields, quantiles."""

from __future__ import annotations

import pytest

from repro.sessions import Session, nearest_rank


class TestSessionValidation:
    def test_basic_session(self):
        s = Session(source=0, destinations=(1, 2, 3), num_packets=4, arrival_time=7.5)
        assert s.n == 4
        assert s.work == 12
        assert s.sort_key == (7.5, 0)

    def test_rejects_empty_destinations(self):
        with pytest.raises(ValueError, match="at least one destination"):
            Session(source=0, destinations=(), num_packets=1)

    def test_rejects_duplicate_destinations(self):
        with pytest.raises(ValueError, match="duplicate"):
            Session(source=0, destinations=(1, 1), num_packets=1)

    def test_rejects_source_in_destinations(self):
        with pytest.raises(ValueError, match="cannot be a destination"):
            Session(source=1, destinations=(1, 2), num_packets=1)

    def test_rejects_bad_packets_arrival_k(self):
        with pytest.raises(ValueError, match="num_packets"):
            Session(source=0, destinations=(1,), num_packets=0)
        with pytest.raises(ValueError, match="arrival_time"):
            Session(source=0, destinations=(1,), num_packets=1, arrival_time=-1.0)
        with pytest.raises(ValueError, match="k must be"):
            Session(source=0, destinations=(1,), num_packets=1, k=0)

    def test_list_destinations_normalized_to_tuple(self):
        s = Session(source=0, destinations=[1, 2], num_packets=1)
        assert s.destinations == (1, 2)


class TestNearestRank:
    def test_median_of_odd_list_is_middle(self):
        assert nearest_rank([3.0, 1.0, 2.0], 0.5) == 2.0

    def test_always_returns_a_member(self):
        values = [10.0, 20.0, 30.0, 40.0]
        for q in (0.01, 0.25, 0.5, 0.75, 0.95, 0.99, 1.0):
            assert nearest_rank(values, q) in values

    def test_p99_of_small_sample_is_max(self):
        assert nearest_rank([5.0, 1.0, 9.0], 0.99) == 9.0

    def test_rejects_empty_and_bad_q(self):
        with pytest.raises(ValueError):
            nearest_rank([], 0.5)
        with pytest.raises(ValueError):
            nearest_rank([1.0], 0.0)
        with pytest.raises(ValueError):
            nearest_rank([1.0], 1.5)
