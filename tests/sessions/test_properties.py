"""Property-based invariants: work conservation, FIFO order, determinism."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network import host
from repro.sessions import (
    SCHEDULERS,
    Session,
    SessionSimulator,
    generate_sessions,
    records_json,
    sessions_sweep,
)

from .conftest import STAR_HOSTS, STEP_PARAMS, star


def _fabric():
    topo, router = star(STAR_HOSTS)
    return topo, router, [host(i) for i in range(STAR_HOSTS)]


#: A random non-overlapping batch of up to four sessions on the star.
session_batches = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=30.0, allow_nan=False),  # arrival
        st.integers(min_value=1, max_value=3),  # packets
        st.integers(min_value=1, max_value=2),  # dests per session
    ),
    min_size=1,
    max_size=4,
).map(
    lambda rows: [
        Session(
            source=host(3 * i),
            destinations=tuple(host(3 * i + 1 + d) for d in range(dests)),
            num_packets=m,
            arrival_time=round(arrival, 1),
            session_id=i,
        )
        for i, (arrival, m, dests) in enumerate(rows)
    ]
)


class TestWorkConservation:
    @settings(max_examples=25, deadline=None)
    @given(
        sessions=session_batches,
        scheduler=st.sampled_from(sorted(SCHEDULERS)),
        max_active=st.sampled_from([1, 2, None]),
    )
    def test_no_idle_slot_while_sessions_wait(self, sessions, scheduler, max_active):
        topo, router, ordering = _fabric()
        sim = SessionSimulator(
            topo, router, ordering,
            params=STEP_PARAMS, scheduler=scheduler, max_active=max_active,
        )
        result = sim.run_sessions(sessions)
        assert len(result.results) == len(sessions)
        assert sim.last_arbiter.work_conservation_violations() == []


class TestFifoOrdering:
    @settings(max_examples=25, deadline=None)
    @given(sessions=session_batches)
    def test_fifo_never_reorders_ready_sessions(self, sessions):
        """If Y was ready when X was admitted and Y admitted later,
        X must precede Y in FIFO key order."""
        topo, router, ordering = _fabric()
        sim = SessionSimulator(
            topo, router, ordering,
            params=STEP_PARAMS, scheduler="fifo", max_active=1,
        )
        sim.run_sessions(sessions)
        key = {s.session_id: s.sort_key for s in sessions}
        ready_at, admit_at = {}, {}
        for time, kind, sid in sim.last_arbiter.log:
            if kind == "ready":
                ready_at[sid] = time
            elif kind == "admit":
                admit_at[sid] = time
        for x, tx in admit_at.items():
            for y, ty in admit_at.items():
                if ready_at[y] <= tx and ty > tx:
                    assert key[y] >= key[x]


class TestGeneratorDeterminism:
    @settings(max_examples=20, deadline=None)
    @given(
        kind=st.sampled_from(["poisson", "batch", "flash_crowd"]),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        count=st.integers(min_value=1, max_value=12),
    )
    def test_same_seed_reproduces_exactly(self, kind, seed, count):
        hosts = [host(i) for i in range(16)]
        kwargs = {"count": count, "packets": 2, "seed": seed}
        if kind == "poisson":
            kwargs.update(rate=0.05, dests=3)
        elif kind == "batch":
            kwargs.update(dests=3)
        else:
            kwargs.update(max_dests=4, window=20.0)
        assert generate_sessions(kind, hosts, **kwargs) == generate_sessions(
            kind, hosts, **kwargs
        )


class TestSweepDeterminism:
    def test_workers_one_and_four_agree_byte_for_byte(self, tmp_path):
        kwargs = dict(
            schedulers=("fifo", "cda"),
            loads=(2.0,),
            seeds=(0,),
            count=5,
            dests=7,
            m=2,
            max_active=2,
            measure_isolated=False,
        )
        serial = sessions_sweep(workers=1, **kwargs)
        parallel = sessions_sweep(workers=4, **kwargs)
        assert records_json(serial) == records_json(parallel)
