"""The ``sessions`` CLI subcommand: smoke, sweep output, trace, stats."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    assert code == 0
    return capsys.readouterr().out


SWEEP_ARGS = (
    "sessions", "--schedulers", "fifo,cda", "--loads", "2.0",
    "--runs", "1", "--count", "4", "--dests", "5", "--bytes", "128",
)


class TestSmoke:
    def test_smoke_prints_table_and_ok(self, capsys):
        out = run_cli(capsys, "sessions", "--smoke")
        assert "concurrent sessions" in out
        assert "sessions smoke OK" in out
        assert "fifo" in out and "cda" in out


class TestSweep:
    def test_writes_records_with_manifest(self, capsys, tmp_path):
        out_path = tmp_path / "sessions.json"
        out = run_cli(capsys, *SWEEP_ARGS, "--out", str(out_path))
        assert f"wrote {out_path}" in out
        payload = json.loads(out_path.read_text())
        assert payload["version"] == 1
        assert payload["manifest"]["command"] == "sessions"
        records = payload["records"]
        assert {r["scheduler"] for r in records} == {"fifo", "cda"}
        assert all(r["completed"] == 4 for r in records)

    def test_trace_out_names_session_tracks(self, capsys, tmp_path):
        trace_path = tmp_path / "sessions_trace.json"
        out = run_cli(capsys, *SWEEP_ARGS, "--trace-out", str(trace_path))
        assert f"wrote {trace_path}" in out
        doc = json.loads(trace_path.read_text())
        names = {
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert any(name.startswith("session ") for name in names)

    def test_stats_snapshot_includes_sessions_provider(self, capsys):
        out = run_cli(capsys, "sessions", "--smoke", "--stats")
        assert '"sessions"' in out
        assert '"sessions_completed"' in out


class TestValidation:
    def test_unknown_scheduler_rejected(self, capsys):
        assert main(["sessions", "--schedulers", "edf"]) == 2
        err = capsys.readouterr().err
        assert "unknown scheduler" in err

    def test_bad_load_rejected(self, capsys):
        assert main(["sessions", "--loads", "0"]) == 2
        err = capsys.readouterr().err
        assert "--loads" in err
