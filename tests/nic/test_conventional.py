"""Conventional NI: host-level store-and-forward baseline."""

from __future__ import annotations

import pytest

from repro.core import MulticastTree, build_binomial_tree, build_linear_tree
from repro.mcast import MulticastSimulator
from repro.network import host
from repro.nic import ConventionalInterface, FPFSInterface

from .helpers import FAST, star


def run(tree, m, n_hosts=8, ni=ConventionalInterface, collect_trace=False):
    topo, router = star(n_hosts)
    sim = MulticastSimulator(topo, router, params=FAST, ni_class=ni, collect_trace=collect_trace)
    return sim.run(tree, m), sim


def test_all_destinations_receive():
    tree = build_binomial_tree([host(i) for i in range(6)])
    result, _ = run(tree, 2)
    assert len(result.destination_completion) == 5


def test_direct_send_has_no_forwarding_penalty():
    # Single hop: conventional == smart except DMA accounting.
    tree = build_linear_tree([host(0), host(1)])
    r_conv, _ = run(tree, 1, ni=ConventionalInterface)
    r_smart, _ = run(tree, 1, ni=FPFSInterface)
    assert r_conv.completion_time == pytest.approx(
        r_smart.completion_time + FAST.t_dma
    )


def test_intermediate_hop_pays_host_overheads():
    # 0 -> 1 -> 2: the forwarding hop costs t_dma (up) + t_r + t_s +
    # t_dma (down) more than the smart NI's pure-coprocessor path.
    tree = build_linear_tree([host(0), host(1), host(2)])
    r_conv, _ = run(tree, 1, ni=ConventionalInterface)
    r_smart, _ = run(tree, 1, ni=FPFSInterface)
    extra = r_conv.completion_time - r_smart.completion_time
    # Source-side DMA down, host-1 DMA up, host software t_r + t_s,
    # host-1 DMA back down.  Host 2's own DMA/t_r is outside the
    # completion metric (which stops at NI arrival).
    expected = 3 * FAST.t_dma + FAST.t_r + FAST.t_s
    assert extra == pytest.approx(expected)


def test_store_and_forward_blocks_on_whole_message():
    # With m packets, the intermediate host forwards nothing until all
    # m arrived: completion grows ~linearly with m on a 2-hop chain
    # (no cut-through pipelining of the second hop).
    tree = build_linear_tree([host(0), host(1), host(2)])
    r2, _ = run(tree, 2, ni=ConventionalInterface)
    r8, _ = run(tree, 8, ni=ConventionalInterface)
    smart2, _ = run(tree, 2, ni=FPFSInterface)
    smart8, _ = run(tree, 8, ni=FPFSInterface)
    conv_growth = r8.completion_time - r2.completion_time
    smart_growth = smart8.completion_time - smart2.completion_time
    # Conventional pays twice per packet (both hops serialize); smart
    # pipelines and pays once.
    assert conv_growth >= 1.8 * smart_growth


def test_host_recv_trace_present():
    tree = build_linear_tree([host(0), host(1)])
    _, sim = run(tree, 2, collect_trace=True)
    assert sim.last_trace.count("host_recv", host=host(1)) == 2


def test_smart_ni_beats_conventional_on_binomial_multicast():
    # §2.5's claim, measured end to end.
    tree = build_binomial_tree([host(i) for i in range(8)])
    r_conv, _ = run(tree, 1, ni=ConventionalInterface)
    r_smart, _ = run(tree, 1, ni=FPFSInterface)
    assert r_smart.completion_time < r_conv.completion_time


def test_gap_widens_with_tree_depth():
    flat = MulticastTree(host(0))
    flat.add_child(host(0), host(1))
    deep = build_linear_tree([host(0), host(1), host(2), host(3)])
    gap_flat = (
        run(flat, 1, ni=ConventionalInterface)[0].completion_time
        - run(flat, 1, ni=FPFSInterface)[0].completion_time
    )
    gap_deep = (
        run(deep, 1, ni=ConventionalInterface)[0].completion_time
        - run(deep, 1, ni=FPFSInterface)[0].completion_time
    )
    assert gap_deep > gap_flat
