"""Send-queue scheduling policies (FIFO vs round-robin)."""

from __future__ import annotations

import pytest

from repro.core import MulticastTree, build_flat_tree, build_linear_tree
from repro.mcast import MulticastSimulator
from repro.network import host
from repro.nic.scheduling import RoundRobinSendQueue
from repro.sim import Environment

from .helpers import FAST, star


class TestRoundRobinQueue:
    def test_single_class_is_fifo(self, env):
        q = RoundRobinSendQueue(env)
        got = []

        def consumer(env):
            for _ in range(3):
                got.append((yield q.get()))

        env.process(consumer(env))
        for item in ("a", "b", "c"):
            q.put(item)
        env.run()
        assert got == ["a", "b", "c"]

    def test_interleaves_message_classes(self, env):
        # Items without .packet.message land in one control class; use
        # stand-in objects with distinct message ids.
        class FakeMsg:
            def __init__(self, mid):
                self.msg_id = mid

        class FakeJob:
            def __init__(self, mid, tag):
                class P:
                    pass

                self.packet = P()
                self.packet.message = FakeMsg(mid)
                self.tag = tag

        q = RoundRobinSendQueue(env)
        for i in range(3):
            q.put(FakeJob(1, f"a{i}"))
        for i in range(3):
            q.put(FakeJob(2, f"b{i}"))
        got = []

        def consumer(env):
            for _ in range(6):
                job = yield q.get()
                got.append(job.tag)

        env.process(consumer(env))
        env.run()
        assert got == ["a0", "b0", "a1", "b1", "a2", "b2"]

    def test_get_blocks_until_put(self, env):
        q = RoundRobinSendQueue(env)
        got = []

        def consumer(env):
            item = yield q.get()
            got.append((env.now, item))

        def producer(env):
            yield env.timeout(3)
            q.put("late")

        env.process(consumer(env))
        env.process(producer(env))
        env.run()
        assert got == [(3, "late")]

    def test_size_tracking(self, env):
        q = RoundRobinSendQueue(env)
        q.put("x")
        q.put("y")
        assert q.size == 2


class TestSimulatorPolicy:
    def test_unknown_policy_rejected(self):
        topo, router = star(4)
        with pytest.raises(ValueError):
            MulticastSimulator(topo, router, send_policy="bogus")

    def test_single_multicast_unaffected_by_policy(self):
        topo, router = star(8)
        tree = build_linear_tree([host(i) for i in range(6)])
        fifo = MulticastSimulator(topo, router, params=FAST).run(tree, 8)
        rr = MulticastSimulator(
            topo, router, params=FAST, send_policy="round_robin"
        ).run(tree, 8)
        assert fifo.latency == rr.latency

    def test_round_robin_protects_small_flow_from_elephant(self):
        # Host 0 injects a 24-packet flat multicast (a long burst in its
        # send queue); host 6 relays a 2-packet message through host 0.
        # FIFO makes the small flow wait out the burst; round-robin
        # interleaves it.
        topo, router = star(10)
        elephant = build_flat_tree([host(0)] + [host(i) for i in range(1, 6)])
        mouse = MulticastTree(host(6))
        mouse.add_child(host(6), host(0))
        mouse.add_child(host(0), host(7))

        def mouse_latency(policy):
            sim = MulticastSimulator(topo, router, params=FAST, send_policy=policy)
            results = sim.run_many([(elephant, 24), (mouse, 2)])
            return results[1].latency

        assert mouse_latency("round_robin") < mouse_latency("fifo")

    def test_policies_conserve_delivery(self):
        # Same workload, both policies: everything arrives (the
        # simulator validates completion internally).
        topo, router = star(10)
        elephant = build_flat_tree([host(0)] + [host(i) for i in range(1, 6)])
        mouse = MulticastTree(host(6))
        mouse.add_child(host(6), host(0))
        mouse.add_child(host(0), host(7))
        for policy in ("fifo", "round_robin"):
            sim = MulticastSimulator(topo, router, params=FAST, send_policy=policy)
            results = sim.run_many([(elephant, 8), (mouse, 2)])
            assert len(results) == 2
