"""FCFS smart NI behaviour."""

from __future__ import annotations

import pytest

from repro.core import MulticastTree, build_linear_tree
from repro.mcast import MulticastSimulator
from repro.network import host
from repro.nic import FCFSInterface, FPFSInterface

from .helpers import FAST, star


def run(tree, m, n_hosts=8, ni=FCFSInterface, collect_trace=False):
    topo, router = star(n_hosts)
    sim = MulticastSimulator(topo, router, params=FAST, ni_class=ni, collect_trace=collect_trace)
    return sim.run(tree, m), sim


def two_children_tree():
    tree = MulticastTree(host(0))
    tree.add_child(host(0), host(1))
    tree.add_child(host(0), host(2))
    return tree


def test_all_destinations_receive_all_packets():
    tree = two_children_tree()
    result, _ = run(tree, 3)
    assert set(result.destination_completion) == {host(1), host(2)}


def test_source_sends_child_major_order():
    result, sim = run(two_children_tree(), 2, collect_trace=True)
    sends = [
        (r["pkt"], r["dst"]) for r in sim.last_trace.select("ni_send", src=host(0))
    ]
    assert sends == [(0, host(1)), (1, host(1)), (0, host(2)), (1, host(2))]


def test_intermediate_cut_through_to_first_child_only():
    # 0 -> 1 -> {2, 3}: packet 0 reaches host 2 (first child) before
    # host 1 has even received the last packet; host 3 gets nothing
    # until the full message has arrived at host 1.
    tree = MulticastTree(host(0))
    tree.add_child(host(0), host(1))
    tree.add_child(host(1), host(2))
    tree.add_child(host(1), host(3))
    result, sim = run(tree, 3, collect_trace=True)
    trace = sim.last_trace
    first_to_c2 = min(r.time for r in trace.select("ni_recv", host=host(2)))
    last_into_1 = max(r.time for r in trace.select("ni_recv", host=host(1)))
    first_to_c3 = min(r.time for r in trace.select("ni_recv", host=host(3)))
    assert first_to_c2 < last_into_1
    assert first_to_c3 > last_into_1


def test_matches_fpfs_for_single_packet():
    # m = 1: per-packet and per-child orders coincide.
    tree = two_children_tree()
    r_fcfs, _ = run(tree, 1, ni=FCFSInterface)
    r_fpfs, _ = run(tree, 1, ni=FPFSInterface)
    assert r_fcfs.completion_time == pytest.approx(r_fpfs.completion_time)


def test_matches_fpfs_on_linear_tree():
    # Fan-out 1 everywhere: both disciplines degenerate to the same flow.
    tree = build_linear_tree([host(i) for i in range(5)])
    r_fcfs, _ = run(tree, 4, ni=FCFSInterface)
    r_fpfs, _ = run(tree, 4, ni=FPFSInterface)
    assert r_fcfs.completion_time == pytest.approx(r_fpfs.completion_time)


def test_slower_than_fpfs_with_branching_intermediate():
    # FCFS floods late children with back-to-back packets; a child that
    # must itself replicate (fan-out 2 below) cannot keep up and builds
    # a backlog FPFS never creates (FPFS delivers one packet per c
    # sends — exactly the child's replication service rate).
    tree = MulticastTree(host(0))
    tree.add_child(host(0), host(1))
    tree.add_child(host(1), host(2))
    tree.add_child(host(1), host(3))
    tree.add_child(host(3), host(4))
    tree.add_child(host(3), host(5))
    r_fcfs, _ = run(tree, 8, ni=FCFSInterface)
    r_fpfs, _ = run(tree, 8, ni=FPFSInterface)
    assert r_fcfs.completion_time > r_fpfs.completion_time


def test_intermediate_buffer_scales_with_message_length():
    tree = MulticastTree(host(0))
    tree.add_child(host(0), host(1))
    tree.add_child(host(1), host(2))
    tree.add_child(host(1), host(3))
    peaks = []
    for m in (2, 4, 8):
        result, _ = run(tree, m, ni=FCFSInterface)
        peaks.append(result.max_intermediate_buffer)
    assert peaks == [2, 4, 8]  # buffers the whole message


def test_fpfs_buffer_stays_small_same_scenario():
    tree = MulticastTree(host(0))
    tree.add_child(host(0), host(1))
    tree.add_child(host(1), host(2))
    tree.add_child(host(1), host(3))
    for m in (4, 8):
        result, _ = run(tree, m, ni=FPFSInterface)
        assert result.max_intermediate_buffer < m


def test_leaf_buffers_nothing():
    tree = two_children_tree()
    result, _ = run(tree, 5, ni=FCFSInterface)
    assert result.peak_buffers[host(1)] == 0
    assert result.peak_buffers[host(2)] == 0
