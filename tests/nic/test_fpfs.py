"""FPFS smart NI behaviour."""

from __future__ import annotations

import pytest

from repro.core import MulticastTree, build_linear_tree
from repro.mcast import MulticastSimulator
from repro.network import host
from repro.nic import FPFSInterface

from .helpers import FAST, star


def run(tree, m, n_hosts=8, collect_trace=False):
    topo, router = star(n_hosts)
    sim = MulticastSimulator(
        topo, router, params=FAST, ni_class=FPFSInterface, collect_trace=collect_trace
    )
    return sim.run(tree, m), sim


def test_all_destinations_receive_all_packets():
    tree = build_linear_tree([host(i) for i in range(5)])
    result, _ = run(tree, 3)
    for dest in tree.destinations():
        assert result.destination_completion[dest] > 0


def test_exact_latency_linear_tree_single_packet():
    # t_s(10) + per hop [t_ns(1) + wire(1) + t_nr(1)] = 10 + 3h; + t_r.
    tree = build_linear_tree([host(0), host(1), host(2)])
    result, _ = run(tree, 1)
    assert result.completion_time == pytest.approx(10 + 3 + 3)
    assert result.latency == pytest.approx(10 + 6 + 10)


def test_source_sends_packet_major_order():
    tree = MulticastTree(host(0))
    tree.add_child(host(0), host(1))
    tree.add_child(host(0), host(2))
    result, sim = run(tree, 2, collect_trace=True)
    sends = [
        (r["pkt"], r["dst"]) for r in sim.last_trace.select("ni_send", src=host(0))
    ]
    assert sends == [(0, host(1)), (0, host(2)), (1, host(1)), (1, host(2))]


def test_intermediate_forwards_on_arrival_not_after_message():
    # Chain 0 -> 1 -> 2 with m=2: host 2 must get packet 0 *before*
    # host 1 has received packet 1 + forwarding slack (cut-through).
    tree = build_linear_tree([host(0), host(1), host(2)])
    result, sim = run(tree, 2, collect_trace=True)
    p0_at_2 = sim.last_trace.last_time("ni_recv", host=host(2), pkt=0)
    p1_at_1 = sim.last_trace.last_time("ni_recv", host=host(1), pkt=1)
    assert p0_at_2 <= p1_at_1 + FAST.t_ns + 2  # forwarded concurrently


def test_packet_completions_monotone():
    tree = build_linear_tree([host(i) for i in range(6)])
    result, _ = run(tree, 4)
    assert list(result.packet_completion) == sorted(result.packet_completion)


def test_pipeline_interval_tracks_root_fanout():
    # Fan-out 1 vs fan-out 2 root: completion gaps scale accordingly.
    linear = build_linear_tree([host(0), host(1), host(2)])
    wide = MulticastTree(host(0))
    wide.add_child(host(0), host(1))
    wide.add_child(host(0), host(2))
    r_lin, _ = run(linear, 4)
    r_wide, _ = run(wide, 4)
    gap_lin = r_lin.packet_intervals[-1]
    gap_wide = r_wide.packet_intervals[-1]
    assert gap_wide == pytest.approx(2 * gap_lin)


def test_forward_buffer_bounded_by_children_plus_queue():
    # FPFS holds a packet only until its copies leave: with fan-out 1
    # at intermediates, the buffer never exceeds the in-flight window.
    tree = build_linear_tree([host(i) for i in range(4)])
    result, _ = run(tree, 16)
    assert result.max_intermediate_buffer <= 3


def test_injection_charges_t_s_once():
    tree = build_linear_tree([host(0), host(1)])
    r1, _ = run(tree, 1)
    r4, _ = run(tree, 4)
    # 3 extra packets cost 3 * (t_ns + wire) at the single bottleneck
    # hop, not 3 * t_s.
    assert r4.completion_time - r1.completion_time == pytest.approx(3 * 2)


def test_wrong_root_rejected():
    topo, router = star(4)
    sim = MulticastSimulator(topo, router, params=FAST, ni_class=FPFSInterface)
    tree = build_linear_tree([host(1), host(0)])
    bad = build_linear_tree([host(0), host(1)])
    # Build a tree rooted at a host, then hand the NI a tree whose root
    # differs from the injecting NI's host: simulator wires by tree.root,
    # so corrupt the scenario by calling inject directly.
    from repro.nic.packets import Message
    from repro.sim import Environment
    from repro.network import ChannelPool
    from repro.nic import NICRegistry

    env = Environment()
    registry = NICRegistry()
    pool = ChannelPool(env)
    ni = FPFSInterface(env, host(2), router, registry, pool, FAST)
    msg = Message(source=host(0), destinations=(host(1),), num_packets=1)
    with pytest.raises(ValueError, match="root"):
        env.process(ni.inject_multicast(bad, msg))
        env.run()


def test_duplicate_delivery_detection():
    # The NI raises if the same (msg, pkt) arrives twice — a forwarding
    # bug guard.
    from repro.nic.packets import Message, Packet
    from repro.sim import Environment
    from repro.network import ChannelPool
    from repro.nic import NICRegistry

    topo, router = star(3)
    env = Environment()
    registry = NICRegistry()
    pool = ChannelPool(env)
    ni = FPFSInterface(env, host(0), router, registry, pool, FAST)
    msg = Message(source=host(1), destinations=(host(0),), num_packets=1)
    pkt = Packet(msg, 0)
    ni.recv_queue.put(pkt)
    ni.recv_queue.put(pkt)
    with pytest.raises(RuntimeError, match="duplicate"):
        env.run()
