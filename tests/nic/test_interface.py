"""Direct NetworkInterface / NICRegistry unit tests."""

from __future__ import annotations

import pytest

from repro.network import ChannelPool, host
from repro.nic import FPFSInterface, NICRegistry
from repro.nic.packets import Message, Packet
from repro.sim import Environment

from .helpers import FAST, star


def make_ni(env=None, host_id=0, **kwargs):
    topo, router = star(4)
    env = env or Environment()
    registry = NICRegistry()
    pool = ChannelPool(env)
    ni = FPFSInterface(env, host(host_id), router, registry, pool, FAST, **kwargs)
    return env, registry, ni


class TestRegistry:
    def test_register_and_lookup(self):
        env, registry, ni = make_ni()
        assert registry.lookup(host(0)) is ni

    def test_duplicate_host_rejected(self):
        topo, router = star(4)
        env = Environment()
        registry = NICRegistry()
        pool = ChannelPool(env)
        FPFSInterface(env, host(0), router, registry, pool, FAST)
        with pytest.raises(ValueError, match="already"):
            FPFSInterface(env, host(0), router, registry, pool, FAST)

    def test_iteration(self):
        topo, router = star(3)
        env = Environment()
        registry = NICRegistry()
        pool = ChannelPool(env)
        nis = [
            FPFSInterface(env, h, router, registry, pool, FAST) for h in topo.hosts
        ]
        assert set(registry) == set(nis)


class TestValidation:
    def test_ports_validation(self):
        with pytest.raises(ValueError, match="ports"):
            make_ni(ports=0)

    def test_channel_model_validation(self):
        with pytest.raises(ValueError, match="channel_model"):
            make_ni(channel_model="bogus")


class TestBufferBookkeeping:
    def test_enqueue_copies_holds_until_last_send(self):
        env, registry, ni = make_ni()
        # Peer NIs so the sends have real receivers.
        topo, router = star(4)
        msg = Message(source=host(0), destinations=(host(1), host(2)), num_packets=1)
        packet = Packet(msg, 0)
        ni._enqueue_copies(packet, (host(1), host(2)))
        assert ni.forward_buffer.level == 1
        # Create the receiving NIs, then run: after both copies leave,
        # the buffer frees.
        FPFSInterface(env, host(1), ni.router, registry, ni.pool, FAST)
        FPFSInterface(env, host(2), ni.router, registry, ni.pool, FAST)
        env.run(until=50)
        assert ni.forward_buffer.level == 0
        assert ni.forward_buffer.peak == 1

    def test_enqueue_no_children_is_noop(self):
        env, registry, ni = make_ni()
        msg = Message(source=host(1), destinations=(host(0),), num_packets=1)
        ni._enqueue_copies(Packet(msg, 0), ())
        assert ni.forward_buffer.level == 0

    def test_message_complete(self):
        env, registry, ni = make_ni()
        msg = Message(source=host(1), destinations=(host(0),), num_packets=2)
        assert not ni.message_complete(msg)
        ni.received_at[(msg.msg_id, 0)] = 1.0
        assert not ni.message_complete(msg)
        ni.received_at[(msg.msg_id, 1)] = 2.0
        assert ni.message_complete(msg)


class TestBaseHooks:
    def test_on_packet_abstract(self):
        from repro.nic.interface import NetworkInterface

        topo, router = star(2)
        env = Environment()
        ni = NetworkInterface(
            env, host(0), router, NICRegistry(), ChannelPool(env), FAST
        )
        msg = Message(source=host(1), destinations=(host(0),), num_packets=1)
        with pytest.raises(NotImplementedError):
            ni.on_packet(Packet(msg, 0))

    def test_inject_abstract(self):
        from repro.core import build_linear_tree
        from repro.nic.interface import NetworkInterface

        topo, router = star(2)
        env = Environment()
        ni = NetworkInterface(
            env, host(0), router, NICRegistry(), ChannelPool(env), FAST
        )
        tree = build_linear_tree([host(0), host(1)])
        msg = Message(source=host(0), destinations=(host(1),), num_packets=1)
        with pytest.raises(NotImplementedError):
            next(iter(ni.inject_multicast(tree, msg)))
