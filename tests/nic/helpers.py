"""Shared mini-fixtures for NI behaviour tests.

``star(n)`` builds a single-switch network: every host route is exactly
two channels (host→switch→host) and host links never contend between
different destination pairs, so NI-level timing is hand-checkable.
"""

from __future__ import annotations

from repro.network import Topology, UpDownRouter, switch
from repro.params import SystemParams

#: Round-number timing: each send = t_ns(1) + wire(1); each receive = 1.
FAST = SystemParams(
    t_s=10.0,
    t_r=10.0,
    t_ns=1.0,
    t_nr=1.0,
    packet_bytes=64,
    t_switch=0.0,
    link_bandwidth=64.0,
    t_dma=0.5,
)


def star(n_hosts: int):
    topo = Topology(switch_ports=None)
    topo.add_switch(0)
    for i in range(n_hosts):
        topo.add_host(i, switch(0))
    return topo, UpDownRouter(topo)
