"""ReliableFPFSInterface mechanics: happy path, gap NACKs, tail timers.

The mcast-level suite (tests/mcast/test_reliable.py) checks end-state
properties under random loss; here the loss is *scripted* per packet
index so each recovery path — gap-triggered NACK, timer-triggered tail
NACK, duplicate suppression, retransmission store — is exercised
deterministically and observed in the trace.
"""

from __future__ import annotations

import pytest

from repro.core import build_kbinomial_tree
from repro.mcast import ReliableMulticastSimulator, chain_for
from repro.mcast.orderings import cco_ordering
from repro.network import UpDownRouter, build_irregular_network
from repro.nic.reliable import LossyChannelPool, Nack, ReliableFPFSInterface
from repro.sim import Environment


class ScriptedLossPool(LossyChannelPool):
    """Drops each packet index in ``drop_once`` exactly once."""

    def __init__(self, env, drop_once, seed: int = 0) -> None:
        super().__init__(env, loss_rate=0.5, seed=seed)  # rate unused below
        self._drop_once = set(drop_once)

    def should_drop(self, payload) -> bool:
        if isinstance(payload, Nack):
            return False
        index = getattr(payload, "index", None)
        if index in self._drop_once:
            self._drop_once.discard(index)
            self.dropped += 1
            return True
        return False


class ScriptedLossSimulator(ReliableMulticastSimulator):
    """Reliable simulator with a scripted (per-index) loss plan."""

    def __init__(self, topology, router, drop_once, **kwargs):
        super().__init__(topology, router, loss_rate=0.0, **kwargs)
        self._drop_once = tuple(drop_once)

    def _make_pool(self, env):
        self._current_pool = ScriptedLossPool(env, self._drop_once)
        return self._current_pool


@pytest.fixture(scope="module")
def fabric():
    topology = build_irregular_network(n_switches=4, switch_ports=6, hosts_per_switch=2, seed=3)
    router = UpDownRouter(topology)
    ordering = cco_ordering(topology, router)
    chain = chain_for(ordering[0], list(ordering[1:6]), ordering)
    tree = build_kbinomial_tree(chain, 2)
    return topology, router, tree


class TestHappyPath:
    def test_no_loss_no_recovery_traffic(self, fabric):
        topology, router, tree = fabric
        sim = ScriptedLossSimulator(topology, router, drop_once=(), collect_trace=True)
        result = sim.run(tree, 4)
        assert sim.last_dropped == 0
        assert not list(sim.last_trace.select("nack"))
        assert not list(sim.last_trace.select("retransmit"))
        assert len(result.destination_completion) == 5

    def test_retransmission_store_holds_all_packets(self, fabric):
        topology, router, tree = fabric
        sim = ScriptedLossSimulator(topology, router, drop_once=())
        sim.run(tree, 3)
        # Every NI that saw the message retains all of it, keyed by index.
        for ni in sim.last_registry:
            assert isinstance(ni, ReliableFPFSInterface)
            if ni.host in tree and ni.received_at:
                retained = {index for (_, index) in ni._retain}
                assert retained == {0, 1, 2}


class TestDropPaths:
    def test_gap_loss_triggers_nack_and_recovers(self, fabric):
        # Drop packet 1 once: some receiver sees packet 2 with 1
        # missing — a gap — and must NACK exactly the missing index.
        topology, router, tree = fabric
        sim = ScriptedLossSimulator(topology, router, drop_once=(1,), collect_trace=True)
        result = sim.run(tree, 4)  # completion is verified by the collector
        assert sim.last_dropped == 1
        nacks = list(sim.last_trace.select("nack"))
        assert nacks and all(1 in record["indices"] for record in nacks)
        retransmits = list(sim.last_trace.select("retransmit"))
        assert retransmits and all(1 in record["indices"] for record in retransmits)
        assert len(result.destination_completion) == 5

    def test_tail_loss_recovered_by_timer_not_gap(self, fabric):
        # Dropping the last packet produces no gap; only the quiet-period
        # timer can notice, so recovery costs at least NACK_TIMEOUT.
        topology, router, tree = fabric
        m = 4
        clean = ScriptedLossSimulator(topology, router, drop_once=())
        lossy = ScriptedLossSimulator(
            topology, router, drop_once=(m - 1,), collect_trace=True
        )
        baseline = clean.run(tree, m).latency
        recovered = lossy.run(tree, m)
        assert lossy.last_dropped == 1
        nacks = list(lossy.last_trace.select("nack"))
        assert nacks and all(m - 1 in record["indices"] for record in nacks)
        assert recovered.latency >= baseline + ReliableFPFSInterface.NACK_TIMEOUT

    def test_duplicate_retransmissions_are_dropped_silently(self, fabric):
        # Dropping an early packet at high fan-out can draw NACKs from
        # several children; the parent answers each, and any duplicate
        # arrivals must be absorbed (plain FPFS NIs would raise).
        topology, router, tree = fabric
        sim = ScriptedLossSimulator(
            topology, router, drop_once=(0, 2), collect_trace=True
        )
        result = sim.run(tree, 4)
        assert sim.last_dropped == 2
        assert len(result.destination_completion) == 5
        for completion in result.destination_completion.values():
            assert completion > 0


class TestInterfaceInternals:
    def test_parent_lookup_requires_registration(self):
        from repro.network.links import ChannelPool
        from repro.nic.interface import NICRegistry
        from repro.params import PAPER_PARAMS

        env = Environment()
        ni = ReliableFPFSInterface(
            env, "h0", None, NICRegistry(), ChannelPool(env), PAPER_PARAMS
        )
        with pytest.raises(RuntimeError, match="no parent registered"):
            ni._parent_of(42)
        ni.register_parent(42, "h1")
        assert ni._parent_of(42) == "h1"

    def test_nack_is_a_value_object(self):
        a = Nack(7, (1, 2), "h3")
        assert a.msg_id == 7 and a.indices == (1, 2) and a.requester == "h3"
        assert a == Nack(7, (1, 2), "h3")
