"""Message/Packet construction rules."""

from __future__ import annotations

import pytest

from repro.network import host
from repro.nic import Message, Packet, packetize


def make_message(m=3, ndest=2):
    return Message(
        source=host(0),
        destinations=tuple(host(i + 1) for i in range(ndest)),
        num_packets=m,
    )


def test_message_n_counts_source():
    assert make_message(ndest=5).n == 6


def test_message_ids_unique():
    assert make_message().msg_id != make_message().msg_id


def test_message_needs_destinations():
    with pytest.raises(ValueError):
        Message(source=host(0), destinations=(), num_packets=1)


def test_message_rejects_self_destination():
    with pytest.raises(ValueError):
        Message(source=host(0), destinations=(host(0),), num_packets=1)


def test_message_rejects_duplicate_destinations():
    with pytest.raises(ValueError):
        Message(source=host(0), destinations=(host(1), host(1)), num_packets=1)


def test_message_rejects_zero_packets():
    with pytest.raises(ValueError):
        Message(source=host(0), destinations=(host(1),), num_packets=0)


def test_packetize_produces_indexed_sequence():
    msg = make_message(m=4)
    pkts = packetize(msg)
    assert [p.index for p in pkts] == [0, 1, 2, 3]
    assert all(p.message is msg for p in pkts)


def test_packet_is_last():
    msg = make_message(m=2)
    pkts = packetize(msg)
    assert not pkts[0].is_last and pkts[1].is_last


def test_packet_index_bounds():
    msg = make_message(m=2)
    with pytest.raises(ValueError):
        Packet(msg, 2)
    with pytest.raises(ValueError):
        Packet(msg, -1)


def test_params_packets_for():
    from repro.params import SystemParams

    p = SystemParams(packet_bytes=64)
    assert p.packets_for(1) == 1
    assert p.packets_for(64) == 1
    assert p.packets_for(65) == 2
    assert p.packets_for(640) == 10
    with pytest.raises(ValueError):
        p.packets_for(0)
