"""The unified metrics registry: cache, service, and sim layers."""

from __future__ import annotations

import pytest

from repro.machine import Machine
from repro.obs import GLOBAL_METRICS, MetricsRegistry, sanitize_metric_name
from repro.obs.metrics import cache_snapshot


def test_register_and_snapshot():
    reg = MetricsRegistry()
    reg.register("a", lambda: {"x": 1})
    reg.set_gauges("b", {"y": 2.5})
    assert reg.names() == ("a", "b")
    assert reg.snapshot() == {"a": {"x": 1}, "b": {"y": 2.5}}


def test_register_is_last_writer_wins():
    reg = MetricsRegistry()
    reg.register("a", lambda: {"v": 1})
    reg.register("a", lambda: {"v": 2})
    assert reg.snapshot() == {"a": {"v": 2}}


def test_unregister_is_idempotent():
    reg = MetricsRegistry()
    reg.register("a", lambda: {})
    reg.unregister("a")
    reg.unregister("a")
    assert reg.names() == ()


def test_set_gauges_copies_now():
    reg = MetricsRegistry()
    values = {"x": 1}
    reg.set_gauges("g", values)
    values["x"] = 99
    assert reg.snapshot()["g"] == {"x": 1}


def test_failing_provider_is_isolated():
    reg = MetricsRegistry()

    def boom():
        raise RuntimeError("nope")

    reg.register("bad", boom)
    reg.register("good", lambda: {"ok": True})
    snap = reg.snapshot()
    assert snap["good"] == {"ok": True}
    assert "nope" in snap["bad"]["error"]


def test_non_callable_provider_rejected():
    with pytest.raises(TypeError):
        MetricsRegistry().register("a", {"not": "callable"})


def test_global_registry_unifies_cache_service_and_sim():
    from repro.service.metrics import ServiceMetrics

    metrics = ServiceMetrics()  # registers itself under "service"
    metrics.requests.inc()
    machine = Machine.irregular(seed=0)
    hosts = machine.hosts
    machine.multicast(hosts[0], hosts[1:8], 512)  # publishes "sim" gauges

    snap = GLOBAL_METRICS.snapshot()
    assert {"cache", "service", "sim"} <= set(snap)
    assert snap["service"]["counters"]["requests"] >= 1
    assert snap["sim"]["ni_buffer_peak"] >= 1
    assert snap["sim"]["hosts"] == 64
    assert set(snap["cache"]) == set(cache_snapshot())


def test_sim_gauges_mirror_simulator_attribute():
    machine = Machine.irregular(seed=1)
    hosts = machine.hosts
    machine.multicast(hosts[0], hosts[1:4], 128)
    gauges = machine.simulator.last_gauges
    assert gauges == GLOBAL_METRICS.snapshot()["sim"]
    assert gauges["ni_buffer_avg"] >= 0.0


def test_reset_restores_the_baseline_providers():
    reg = MetricsRegistry({"base": lambda: {"v": 1}})
    reg.register("runtime", lambda: {"v": 2})
    reg.set_gauges("gauges", {"v": 3})
    reg.reset()
    assert reg.names() == ("base",)
    assert reg.snapshot() == {"base": {"v": 1}}


def test_global_reset_keeps_the_cache_builtin():
    GLOBAL_METRICS.register("ephemeral", lambda: {})
    GLOBAL_METRICS.reset()
    assert GLOBAL_METRICS.names() == ("cache",)


def test_fixture_isolates_runtime_registrations():
    # The autouse conftest fixture resets GLOBAL_METRICS after every
    # test, so runtime registrations made by earlier tests (simulators,
    # plan servers) must never be visible here.
    assert GLOBAL_METRICS.names() == ("cache",)


def test_sanitize_passes_valid_names_through():
    for name in ("cache", "plan_latency", "A15", "_private", "x2"):
        assert sanitize_metric_name(name) == name


def test_sanitize_replaces_prometheus_hostile_characters():
    assert sanitize_metric_name("plan-latency.p99") == "plan_latency_p99"
    assert sanitize_metric_name("per cpu") == "per_cpu"
    assert sanitize_metric_name("9lives") == "_9lives"


def test_sanitize_rejects_hopeless_names():
    with pytest.raises(ValueError):
        sanitize_metric_name("")
    with pytest.raises(TypeError):
        sanitize_metric_name(7)


def test_provider_names_sanitized_at_registration():
    # Regression: names are cleaned on the way *in*, so every snapshot
    # key is already a legal Prometheus metric-name component.
    reg = MetricsRegistry()
    reg.register("my-provider.v2", lambda: {"x": 1})
    reg.set_gauges("some gauges", {"bad-key.name": 2.0})
    snap = reg.snapshot()
    assert snap["my_provider_v2"] == {"x": 1}
    assert snap["some_gauges"] == {"bad_key_name": 2.0}
    reg.unregister("my-provider.v2")  # unregister sanitizes too
    assert "my_provider_v2" not in reg.snapshot()


def test_snapshot_order_is_deterministic():
    # Regression: snapshots iterate providers in sorted order, so two
    # registries holding the same providers render identically no
    # matter the registration order (the exposition layer's contract).
    forward, backward = MetricsRegistry(), MetricsRegistry()
    names = ["zeta", "alpha", "mid"]
    for name in names:
        forward.register(name, lambda: {"v": 1})
    for name in reversed(names):
        backward.register(name, lambda: {"v": 1})
    assert list(forward.snapshot()) == sorted(names)
    assert list(forward.snapshot()) == list(backward.snapshot())
