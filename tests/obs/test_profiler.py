"""Sampling profiler: manual determinism, live capture, exports."""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.obs import NULL_PROFILER, SamplingProfiler
from repro.obs.profiler import NullProfiler


STACK_A = ("mod:main", "mod:outer", "mod:inner")
STACK_B = ("mod:main", "mod:other")


def manual_profiler(**kwargs) -> SamplingProfiler:
    """A profiler that never spawns a thread (sim-time mode)."""
    return SamplingProfiler(auto_start=False, seed=0, **kwargs)


class TestManualMode:
    def test_sample_stack_accumulates_counts(self):
        prof = manual_profiler()
        prof.sample_stack(STACK_A)
        prof.sample_stack(STACK_A, count=2)
        prof.sample_stack(STACK_B)
        assert prof.samples == 4
        assert prof.stack_counts() == {STACK_A: 3, STACK_B: 1}

    def test_empty_stack_is_ignored(self):
        prof = manual_profiler()
        prof.sample_stack(())
        assert prof.samples == 0

    def test_collapsed_output_is_sorted_and_newline_terminated(self):
        prof = manual_profiler()
        prof.sample_stack(STACK_B)
        prof.sample_stack(STACK_A, count=3)
        text = prof.to_collapsed()
        assert text == "mod:main;mod:other 1\nmod:main;mod:outer;mod:inner 3\n"

    def test_empty_profile_collapses_to_empty_string(self):
        assert manual_profiler().to_collapsed() == ""

    def test_identical_samples_give_identical_exports(self):
        profs = [manual_profiler(), manual_profiler()]
        for prof in profs:
            prof.sample_stack(STACK_A, count=5)
            prof.sample_stack(STACK_B, count=2)
        assert profs[0].to_collapsed() == profs[1].to_collapsed()
        assert profs[0].to_speedscope() == profs[1].to_speedscope()

    def test_max_depth_truncates_deep_stacks(self):
        prof = manual_profiler(max_depth=4)
        # sample_once applies the depth cap while walking real frames;
        # drive it against this thread from all_threads mode.
        prof.all_threads = True
        prof.sample_once()
        for stack in prof.stack_counts():
            assert len(stack) <= 4


class TestSpeedscope:
    def test_schema_and_weights(self):
        prof = manual_profiler()
        prof.sample_stack(STACK_A, count=3)
        prof.sample_stack(STACK_B)
        doc = prof.to_speedscope(name="unit test")
        assert doc["$schema"] == "https://www.speedscope.app/file-format-schema.json"
        [profile] = doc["profiles"]
        assert profile["type"] == "sampled"
        assert profile["name"] == "unit test"
        assert sum(profile["weights"]) == 4.0
        assert profile["endValue"] == 4.0
        # Every sample's frame indices resolve into the shared table.
        frames = doc["shared"]["frames"]
        for sample in profile["samples"]:
            for index in sample:
                assert 0 <= index < len(frames)

    def test_shared_frames_are_deduplicated(self):
        prof = manual_profiler()
        prof.sample_stack(STACK_A)
        prof.sample_stack(STACK_B)
        names = [f["name"] for f in prof.to_speedscope()["shared"]["frames"]]
        assert len(names) == len(set(names))
        assert set(names) == set(STACK_A) | set(STACK_B)


class TestExports:
    def test_write_collapsed(self, tmp_path):
        prof = manual_profiler()
        prof.sample_stack(STACK_A, count=2)
        path = prof.write_collapsed(str(tmp_path / "prof.collapsed"))
        assert open(path, encoding="utf-8").read() == prof.to_collapsed()

    def test_write_speedscope_round_trips_as_json(self, tmp_path):
        prof = manual_profiler()
        prof.sample_stack(STACK_A)
        path = prof.write_speedscope(str(tmp_path / "prof.json"))
        assert json.loads(open(path, encoding="utf-8").read()) == prof.to_speedscope()


class TestLiveSampling:
    def test_samples_the_starting_thread(self):
        prof = SamplingProfiler(hz=500.0, seed=0)
        deadline = time.perf_counter() + 5.0
        with prof:
            while prof.samples == 0 and time.perf_counter() < deadline:
                sum(i * i for i in range(1000))
        assert prof.samples > 0
        # Only the target (this) thread was sampled: every stack bottoms
        # out in this module's call chain, not the sampler thread's.
        for stack in prof.stack_counts():
            assert any("test_profiler" in label or "runpy" in label or
                       "pytest" in label or ":" in label for label in stack)
        snap = prof.snapshot()
        assert snap["samples"] == prof.samples
        assert snap["elapsed_s"] > 0
        assert snap["effective_hz"] > 0

    def test_sample_once_filters_to_target_thread(self):
        prof = manual_profiler()
        prof.start()  # manual mode: records the target, spawns nothing
        done = threading.Event()
        thread = threading.Thread(target=done.wait, name="bystander")
        thread.start()
        try:
            taken = prof.sample_once()
            assert taken == 1  # only the calling (target) thread
        finally:
            done.set()
            thread.join()

    def test_all_threads_mode_sees_other_threads(self):
        prof = manual_profiler(all_threads=True)
        prof.start()
        done = threading.Event()
        thread = threading.Thread(target=done.wait, name="bystander")
        thread.start()
        try:
            taken = prof.sample_once()
            assert taken >= 2
        finally:
            done.set()
            thread.join()

    def test_stop_is_idempotent_and_freezes_elapsed(self):
        prof = SamplingProfiler(hz=200.0)
        prof.start()
        prof.stop()
        elapsed = prof.snapshot()["elapsed_s"]
        time.sleep(0.01)
        prof.stop()
        assert prof.snapshot()["elapsed_s"] == elapsed


class TestDisabledAndNull:
    def test_disabled_profiler_is_inert(self):
        prof = SamplingProfiler(enabled=False)
        prof.start()
        prof.sample_stack(STACK_A)
        assert prof.sample_once() == 0
        assert prof.samples == 0
        assert prof._thread is None  # start() spawned nothing

    def test_null_profiler_singleton(self):
        assert isinstance(NULL_PROFILER, NullProfiler)
        assert NULL_PROFILER.enabled is False
        assert NULL_PROFILER.start() is NULL_PROFILER
        assert NULL_PROFILER.sample_once() == 0
        NULL_PROFILER.sample_stack(STACK_A)
        assert NULL_PROFILER.stack_counts() == {}
        assert NULL_PROFILER.to_collapsed() == ""
        with NULL_PROFILER as prof:
            assert prof is NULL_PROFILER

    def test_nonpositive_rate_rejected(self):
        with pytest.raises(ValueError):
            SamplingProfiler(hz=0)
        with pytest.raises(ValueError):
            SamplingProfiler(hz=-5)
