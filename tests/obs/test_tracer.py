"""The span/event API: clocks, tracks, spans, and the disabled path."""

from __future__ import annotations

from repro.obs import NULL_TRACER, Tracer


def test_span_records_complete_event():
    t = Tracer()
    track = t.track("proc", "thread")
    with t.span("work", track, cat="test", args={"x": 1}):
        pass
    [event] = [e for e in t.events if e.ph == "X"]
    assert event.name == "work" and event.cat == "test"
    assert event.pid == track.pid and event.tid == track.tid
    assert event.dur >= 0.0 and event.args == {"x": 1}


def test_complete_with_explicit_bounds():
    t = Tracer()
    track = t.track("p", "t")
    t.complete("span", track, 10.0, 25.0, cat="c")
    [event] = [e for e in t.events if e.ph == "X"]
    assert event.ts == 10.0 and event.dur == 15.0


def test_simulated_clock_via_set_clock():
    now = [0.0]
    t = Tracer()
    t.set_clock(lambda: now[0])
    track = t.track("sim", "host")
    now[0] = 5.0
    t.instant("tick", track)
    now[0] = 9.0
    t.instant("tock", track)
    ts = [e.ts for e in t.events if e.ph == "i"]
    assert ts == [5.0, 9.0]
    assert t.now() == 9.0


def test_counter_records_value():
    t = Tracer()
    track = t.track("p", "t")
    t.counter("buffer", track, 3)
    [event] = [e for e in t.events if e.ph == "C"]
    assert event.args == {"value": 3}


def test_track_metadata_emitted_once():
    t = Tracer()
    a = t.track("proc", "thread")
    b = t.track("proc", "thread")
    assert a == b
    meta = [e for e in t.events if e.ph == "M"]
    assert len(meta) == 2  # one process_name + one thread_name
    names = {e.name: e.args["name"] for e in meta}
    assert names == {"process_name": "proc", "thread_name": "thread"}


def test_distinct_tracks_get_distinct_ids():
    t = Tracer()
    a = t.track("p1", "t1")
    b = t.track("p1", "t2")
    c = t.track("p2", "t1")
    assert a.pid == b.pid and a.tid != b.tid
    assert c.pid != a.pid


def test_disabled_tracer_records_nothing():
    t = Tracer(enabled=False)
    track = t.track("p", "t")
    t.complete("x", track, 0.0, 1.0)
    t.instant("y", track)
    t.counter("z", track, 1)
    with t.span("w", track):
        pass
    assert len(t) == 0


def test_disabled_span_is_shared_noop():
    a = Tracer(enabled=False).span("x", None)
    b = NULL_TRACER.span("y", None)
    assert a is b


def test_null_tracer_is_disabled():
    assert not NULL_TRACER.enabled
    assert len(NULL_TRACER) == 0


def test_empty_tracer_is_truthy():
    # Regression: ``__len__`` alone made ``if tracer:`` skip the very
    # first emission of a run (empty buffer -> falsy).
    t = Tracer()
    assert t and len(t) == 0


def test_clear_resets_events_and_tracks():
    t = Tracer()
    t.instant("x", t.track("p", "t"))
    t.clear()
    assert len(t) == 0
    # Re-interning after clear re-emits metadata.
    t.track("p", "t")
    assert [e.ph for e in t.events] == ["M", "M"]
