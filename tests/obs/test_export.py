"""Exporter golden schema: the Chrome trace contract Perfetto relies on."""

from __future__ import annotations

import json

import pytest

from repro.machine import Machine
from repro.obs import Tracer, run_manifest, to_chrome, to_jsonl, trace_summary, write_chrome_trace, write_jsonl


@pytest.fixture(scope="module")
def sim_tracer():
    """A tracer filled by a real simulated multicast (the DES layer)."""
    tracer = Tracer()
    machine = Machine.irregular(seed=0, tracer=tracer)
    hosts = machine.hosts
    machine.multicast(hosts[0], hosts[1:8], 512)
    return tracer


def test_chrome_trace_round_trips_as_json(tmp_path, sim_tracer):
    path = write_chrome_trace(tmp_path / "trace.json", sim_tracer, run_manifest(seed=0))
    doc = json.loads(open(path, encoding="utf-8").read())
    assert set(doc) == {"traceEvents", "displayTimeUnit", "metadata"}
    assert doc["displayTimeUnit"] == "ms"
    assert doc["metadata"]["schema"] == 1


def test_chrome_events_carry_required_keys(sim_tracer):
    doc = to_chrome(sim_tracer)
    assert doc["traceEvents"], "simulated run produced no events"
    for event in doc["traceEvents"]:
        for key in ("ph", "name", "cat", "ts", "pid", "tid"):
            assert key in event, f"event missing {key!r}: {event}"
        assert event["ph"] in {"X", "i", "C", "M"}
        if event["ph"] == "X":
            assert event["dur"] >= 0


def test_chrome_span_timestamps_monotone_per_track(sim_tracer):
    doc = to_chrome(sim_tracer)
    per_track = {}
    for event in doc["traceEvents"]:
        if event["ph"] == "M":
            continue
        per_track.setdefault((event["pid"], event["tid"]), []).append(event["ts"])
    assert per_track
    for track, ts in per_track.items():
        assert ts == sorted(ts), f"track {track} timestamps not monotone"


def test_sim_spans_cover_the_packet_lifecycle(sim_tracer):
    names = {(e.cat, e.name) for e in sim_tracer.events if e.ph != "M"}
    assert ("ni", "inject") in names
    assert ("ni", "send") in names
    assert ("ni", "recv") in names
    assert ("ni", "deliver") in names


def test_jsonl_one_event_per_line(tmp_path, sim_tracer):
    path = write_jsonl(tmp_path / "trace.jsonl", sim_tracer)
    lines = open(path, encoding="utf-8").read().splitlines()
    assert len(lines) == len(sim_tracer.events)
    for line in lines:
        assert "ph" in json.loads(line)
    assert to_jsonl(sim_tracer).count("\n") == len(lines) - 1


def test_trace_summary_digest(sim_tracer):
    text = trace_summary(sim_tracer)
    assert text.startswith("trace:")
    assert "ni/send" in text and "spans" in text and "us" in text


def test_export_survives_non_json_args(tmp_path):
    tracer = Tracer()
    track = tracer.track("p", "t")
    tracer.instant("x", track, args={"obj": object()})
    doc = json.loads(open(write_chrome_trace(tmp_path / "t.json", tracer)).read())
    [event] = [e for e in doc["traceEvents"] if e["ph"] == "i"]
    assert "object object" in event["args"]["obj"]
