"""Exporter golden schema: the Chrome trace contract Perfetto relies on."""

from __future__ import annotations

import json

import pytest

from repro.machine import Machine
from repro.obs import Tracer, run_manifest, to_chrome, to_jsonl, trace_summary, write_chrome_trace, write_jsonl


@pytest.fixture(scope="module")
def sim_tracer():
    """A tracer filled by a real simulated multicast (the DES layer)."""
    tracer = Tracer()
    machine = Machine.irregular(seed=0, tracer=tracer)
    hosts = machine.hosts
    machine.multicast(hosts[0], hosts[1:8], 512)
    return tracer


def test_chrome_trace_round_trips_as_json(tmp_path, sim_tracer):
    path = write_chrome_trace(tmp_path / "trace.json", sim_tracer, run_manifest(seed=0))
    doc = json.loads(open(path, encoding="utf-8").read())
    assert set(doc) == {"traceEvents", "displayTimeUnit", "metadata"}
    assert doc["displayTimeUnit"] == "ms"
    assert doc["metadata"]["schema"] == 1


def test_chrome_events_carry_required_keys(sim_tracer):
    doc = to_chrome(sim_tracer)
    assert doc["traceEvents"], "simulated run produced no events"
    for event in doc["traceEvents"]:
        for key in ("ph", "name", "cat", "ts", "pid", "tid"):
            assert key in event, f"event missing {key!r}: {event}"
        assert event["ph"] in {"X", "i", "C", "M"}
        if event["ph"] == "X":
            assert event["dur"] >= 0


def test_chrome_span_timestamps_monotone_per_track(sim_tracer):
    doc = to_chrome(sim_tracer)
    per_track = {}
    for event in doc["traceEvents"]:
        if event["ph"] == "M":
            continue
        per_track.setdefault((event["pid"], event["tid"]), []).append(event["ts"])
    assert per_track
    for track, ts in per_track.items():
        assert ts == sorted(ts), f"track {track} timestamps not monotone"


def test_sim_spans_cover_the_packet_lifecycle(sim_tracer):
    names = {(e.cat, e.name) for e in sim_tracer.events if e.ph != "M"}
    assert ("ni", "inject") in names
    assert ("ni", "send") in names
    assert ("ni", "recv") in names
    assert ("ni", "deliver") in names


def test_jsonl_one_event_per_line(tmp_path, sim_tracer):
    path = write_jsonl(tmp_path / "trace.jsonl", sim_tracer)
    lines = open(path, encoding="utf-8").read().splitlines()
    assert len(lines) == len(sim_tracer.events)
    for line in lines:
        assert "ph" in json.loads(line)
    assert to_jsonl(sim_tracer).count("\n") == len(lines) - 1


def test_trace_summary_digest(sim_tracer):
    text = trace_summary(sim_tracer)
    assert text.startswith("trace:")
    assert "ni/send" in text and "spans" in text and "us" in text


@pytest.fixture(scope="module")
def sessions_tracer():
    """A tracer filled by a traced concurrent-sessions run."""
    from repro.analysis.experiments import _testbed
    from repro.sessions import SessionSimulator, flash_crowd_sessions

    tracer = Tracer()
    topology, router, ordering = _testbed(1997)
    sessions = flash_crowd_sessions(
        ordering, count=4, max_dests=7, packets=2, seed=0, window=50.0
    )
    simulator = SessionSimulator(
        topology, router, ordering, scheduler="fifo", max_active=2, tracer=tracer
    )
    simulator.run_sessions(sessions)
    return tracer


def test_sessions_emit_one_named_track_per_session(sessions_tracer):
    doc = to_chrome(sessions_tracer)
    # Thread-name metadata events name each session's track.
    names = {
        e["args"]["name"]
        for e in doc["traceEvents"]
        if e["ph"] == "M" and e["name"] == "thread_name"
    }
    assert {f"session {sid}" for sid in range(4)} <= names


def test_session_tracks_hold_fabric_and_queue_spans(sessions_tracer):
    doc = to_chrome(sessions_tracer)
    name_of = {}
    for e in doc["traceEvents"]:
        if e["ph"] == "M" and e["name"] == "thread_name":
            name_of[(e["pid"], e["tid"])] = e["args"]["name"]
    spans_by_track = {}
    for e in doc["traceEvents"]:
        if e["ph"] == "X" and e.get("cat") == "session":
            track = name_of[(e["pid"], e["tid"])]
            spans_by_track.setdefault(track, []).append(e)
    assert len(spans_by_track) == 4
    for sid in range(4):
        spans = spans_by_track[f"session {sid}"]
        # The on-fabric span is always present and self-describing...
        [fabric] = [e for e in spans if e["name"].startswith(f"s{sid} ")]
        assert "n=" in fabric["name"] and "m=" in fabric["name"]
        assert fabric["args"]["session"] == sid
        assert fabric["args"]["latency"] > 0
        assert fabric["dur"] >= 0
        # ...and any queueing wait precedes it on the same track.
        for queued in (e for e in spans if e["name"] == "queued"):
            assert queued["ts"] + queued["dur"] <= fabric["ts"] + 1e-6
            assert queued["args"]["session"] == sid


def test_export_survives_non_json_args(tmp_path):
    tracer = Tracer()
    track = tracer.track("p", "t")
    tracer.instant("x", track, args={"obj": object()})
    doc = json.loads(open(write_chrome_trace(tmp_path / "t.json", tracer)).read())
    [event] = [e for e in doc["traceEvents"] if e["ph"] == "i"]
    assert "object object" in event["args"]["obj"]
