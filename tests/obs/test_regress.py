"""Bench trajectory + regression gate: recording, comparison, self-test."""

from __future__ import annotations

import json

import pytest

from repro.obs import compare, record_trajectory, run_gates
from repro.obs.regress import (
    DEFAULT_THRESHOLD,
    GATES,
    TRAJECTORY_SCHEMA,
    format_report,
    ingest_bench_json,
    latest_entries,
    load_trajectory,
)


def entries(**medians):
    return [
        {"id": gate_id, "name": gate_id, "unit": "s", "median": m, "samples": [m]}
        for gate_id, m in medians.items()
    ]


class TestGates:
    def test_gate_ids_match_the_benchmark_index(self):
        assert set(GATES) == {"A15", "A17", "A18", "A19", "A21", "A22"}
        for workload, name in GATES.values():
            assert callable(workload) and name

    def test_run_gates_produces_trajectory_entries(self):
        progress = []
        [entry] = run_gates(["A18"], repeats=2, warmup=0, progress=progress.append)
        assert entry["id"] == "A18"
        assert entry["unit"] == "s"
        assert len(entry["samples"]) == 2
        assert entry["median"] > 0
        assert any("A18" in line for line in progress)

    def test_unknown_gate_rejected(self):
        with pytest.raises(KeyError, match="A99"):
            run_gates(["A99"])

    def test_repeats_must_be_positive(self):
        with pytest.raises(ValueError):
            run_gates(["A18"], repeats=0)


class TestTrajectory:
    def test_record_and_load_round_trip(self, tmp_path):
        path = str(tmp_path / "traj.json")
        run = record_trajectory(entries(A18=0.002), path, extra={"note": "first"})
        assert run["manifest"]["note"] == "first"
        assert run["manifest"]["schema"] == 1
        record_trajectory(entries(A18=0.003), path)
        trajectory = load_trajectory(path)
        assert trajectory["schema"] == TRAJECTORY_SCHEMA
        assert len(trajectory["runs"]) == 2
        assert latest_entries(trajectory)[0]["median"] == 0.003

    def test_missing_file_loads_empty(self, tmp_path):
        trajectory = load_trajectory(str(tmp_path / "absent.json"))
        assert trajectory["runs"] == []
        assert latest_entries(trajectory) == []

    def test_bare_baseline_run_is_accepted(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"manifest": {}, "entries": entries(A18=0.5)}))
        assert latest_entries(load_trajectory(str(path)))[0]["id"] == "A18"

    def test_wrong_shape_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ValueError, match="not a trajectory"):
            load_trajectory(str(path))

    def test_trajectory_file_has_no_crc_churn(self, tmp_path):
        # Committed files are hand-diffed; the CRC stamp must be absent.
        path = str(tmp_path / "traj.json")
        record_trajectory(entries(A18=0.002), path)
        doc = json.loads(open(path, encoding="utf-8").read())
        from repro.durable.atomic import CRC_KEY

        assert CRC_KEY not in doc

    def test_ingest_pytest_benchmark_json(self, tmp_path):
        artifact = {
            "benchmarks": [
                {
                    "name": "test_bench_thing",
                    "fullname": "benchmarks/bench_x.py::test_bench_thing",
                    "stats": {"median": 0.01, "data": [0.009, 0.01, 0.011]},
                },
                {"name": "no_stats", "stats": {}},
            ]
        }
        path = tmp_path / "BENCH_x.json"
        path.write_text(json.dumps(artifact))
        [entry] = ingest_bench_json(str(path))
        assert entry["id"] == "test_bench_thing"
        assert entry["median"] == 0.01
        assert entry["samples"] == [0.009, 0.01, 0.011]


class TestCompare:
    def test_flags_a_synthetic_2x_slowdown(self):
        """The issue's self-test: an injected 2x slowdown must be caught."""
        baseline = entries(A15=0.1, A17=0.03, A18=0.002, A19=0.015)
        slowed = [dict(e, median=e["median"] * 2.0) for e in baseline]
        report = compare(slowed, baseline)
        assert report["ok"] is False
        assert report["regressions"] == ["A15", "A17", "A18", "A19"]
        for row in report["rows"]:
            assert row["ratio"] == pytest.approx(2.0)
            assert row["regressed"]

    def test_within_threshold_passes(self):
        baseline = entries(A18=0.100)
        current = entries(A18=0.114)  # +14% < the 15% default
        report = compare(current, baseline)
        assert report["ok"] is True
        assert report["regressions"] == []

    def test_speedups_never_flag(self):
        report = compare(entries(A18=0.05), entries(A18=0.1))
        assert report["ok"] is True
        assert report["rows"][0]["ratio"] == pytest.approx(0.5)

    def test_threshold_is_honored(self):
        baseline, current = entries(A18=0.1), entries(A18=0.13)
        assert compare(current, baseline, threshold=0.5)["ok"] is True
        assert compare(current, baseline, threshold=0.35)["ok"] is True
        assert compare(current, baseline, threshold=0.25)["ok"] is False

    def test_threshold_must_be_positive(self):
        with pytest.raises(ValueError):
            compare(entries(A18=1.0), entries(A18=1.0), threshold=0.0)

    def test_unpaired_ids_reported_not_compared(self):
        report = compare(entries(A18=0.1, A20=0.2), entries(A18=0.1, A15=0.3))
        assert report["missing"] == {
            "baseline_only": ["A15"],
            "current_only": ["A20"],
        }
        assert [row["id"] for row in report["rows"]] == ["A18"]

    def test_default_threshold_is_fifteen_percent(self):
        assert DEFAULT_THRESHOLD == 0.15

    def test_format_report_verdicts(self):
        ok = format_report(compare(entries(A18=0.1), entries(A18=0.1)))
        assert "verdict: OK" in ok and "ok" in ok
        bad = format_report(compare(entries(A18=0.3), entries(A18=0.1)))
        assert "REGRESSION in A18" in bad and "REGRESSED" in bad
