"""Prometheus exposition: rendering, strict parsing, full round-trip."""

from __future__ import annotations

import math

import pytest

from repro.obs import parse_prometheus, render_prometheus
from repro.obs.exposition import (
    ExpositionError,
    flatten_for_exposition,
    MetricFamily,
)


@pytest.fixture
def snapshot():
    """A registry-shaped snapshot exercising every mapping rule."""
    return {
        "cache": {
            "plan": {"hits": 3, "misses": 1, "hit_rate": 0.75, "size": 4},
        },
        "service": {
            "counters": {"requests": 10, "shed": 0},
            "plan_latency": {
                "count": 4,
                "sum_us": 100.0,
                "mean_us": 25.0,
                "buckets": [[16.0, 1], [64.0, 3], [None, 4]],
            },
            "note": "strings are skipped",
            "absent": None,
        },
        "sim": {"ni_buffer_peak": 7},
    }


class TestRender:
    def test_counters_get_total_suffix(self, snapshot):
        text = render_prometheus(snapshot)
        assert "repro_cache_plan_hits_total 3" in text
        assert "repro_service_counters_requests_total 10" in text
        # Gauges keep their bare name.
        assert "repro_cache_plan_hit_rate 0.75" in text
        assert "repro_sim_ni_buffer_peak 7" in text

    def test_histogram_family_series(self, snapshot):
        text = render_prometheus(snapshot)
        assert "# TYPE repro_service_plan_latency_us histogram" in text
        assert 'repro_service_plan_latency_us_bucket{le="16"} 1' in text
        assert 'repro_service_plan_latency_us_bucket{le="+Inf"} 4' in text
        assert "repro_service_plan_latency_us_sum 100.0" in text
        assert "repro_service_plan_latency_us_count 4" in text
        # Derived scalars stay gauges alongside the histogram.
        assert "repro_service_plan_latency_mean_us 25.0" in text

    def test_non_numeric_leaves_are_skipped(self, snapshot):
        text = render_prometheus(snapshot)
        assert "note" not in text
        assert "absent" not in text

    def test_every_family_has_help_and_type(self, snapshot):
        text = render_prometheus(snapshot)
        families = parse_prometheus(text)
        for family in families.values():
            assert family.help is not None

    def test_rendering_is_deterministic(self, snapshot):
        assert render_prometheus(snapshot) == render_prometheus(snapshot)

    def test_unsanitary_provider_paths_are_sanitized(self):
        text = render_prometheus({"weird": {"a-b.c": 1}})
        assert "repro_weird_a_b_c 1" in text
        parse_prometheus(text)  # sanitized names pass the strict parser

    def test_default_snapshot_is_global_registry(self):
        # The conftest fixture guarantees the baseline "cache" provider.
        families = parse_prometheus(render_prometheus())
        assert any(name.startswith("repro_cache") for name in families)


class TestRoundTrip:
    def test_every_sample_survives_parse(self, snapshot):
        flat = flatten_for_exposition(snapshot)
        families = parse_prometheus(render_prometheus(snapshot))
        parsed = {}
        for family in families.values():
            for name, labels, value in family.samples:
                key = (name, labels["le"]) if "le" in labels else name
                parsed[key] = value
        assert parsed == {key: float(v) for key, v in flat.items()}

    def test_live_service_metrics_round_trip(self):
        from repro.service.metrics import ServiceMetrics

        metrics = ServiceMetrics()
        metrics.requests.inc()
        metrics.plans.inc(3)
        metrics.plan_latency.record(120e-6)
        metrics.plan_latency.record(0.08)
        families = parse_prometheus(render_prometheus())
        assert "repro_service_counters_requests_total" in families
        hist = families["repro_service_plan_latency_us"]
        count = [v for n, _, v in hist.samples if n.endswith("_count")]
        assert count == [2.0]


class TestStrictParser:
    def test_sample_before_type_rejected(self):
        with pytest.raises(ExpositionError, match="before its # TYPE"):
            parse_prometheus("repro_x 1\n")

    def test_duplicate_type_rejected(self):
        doc = "# TYPE a gauge\na 1\n# TYPE a gauge\n"
        with pytest.raises(ExpositionError, match="duplicate TYPE"):
            parse_prometheus(doc)

    def test_duplicate_series_rejected(self):
        doc = "# TYPE a gauge\na 1\na 2\n"
        with pytest.raises(ExpositionError, match="duplicate series"):
            parse_prometheus(doc)

    def test_invalid_metric_name_rejected(self):
        doc = "# TYPE a-b gauge\na-b 1\n"
        with pytest.raises(ExpositionError, match="invalid metric name"):
            parse_prometheus(doc)

    def test_counter_must_end_in_total(self):
        doc = "# TYPE a counter\na 1\n"
        with pytest.raises(ExpositionError, match="must end in _total"):
            parse_prometheus(doc)

    def test_unknown_type_rejected(self):
        with pytest.raises(ExpositionError, match="unknown type"):
            parse_prometheus("# TYPE a widget\na 1\n")

    def test_bad_value_rejected(self):
        with pytest.raises(ExpositionError, match="bad sample value"):
            parse_prometheus("# TYPE a gauge\na pony\n")

    def test_type_without_samples_rejected(self):
        with pytest.raises(ExpositionError, match="no samples"):
            parse_prometheus("# TYPE a gauge\n")

    def test_unquoted_label_value_rejected(self):
        doc = '# TYPE h histogram\nh_bucket{le=+Inf} 1\nh_count 1\nh_sum 0\n'
        with pytest.raises(ExpositionError, match="quoted"):
            parse_prometheus(doc)

    def _histogram_doc(self, buckets, count=None):
        lines = ["# TYPE h histogram"]
        for le, value in buckets:
            lines.append(f'h_bucket{{le="{le}"}} {value}')
        total = count if count is not None else (buckets[-1][1] if buckets else 0)
        lines.append(f"h_sum 0")
        lines.append(f"h_count {total}")
        return "\n".join(lines) + "\n"

    def test_histogram_missing_inf_bucket_rejected(self):
        doc = self._histogram_doc([("10", 1), ("20", 2)])
        with pytest.raises(ExpositionError, match=r"missing \+Inf"):
            parse_prometheus(doc)

    def test_histogram_non_cumulative_rejected(self):
        doc = self._histogram_doc([("10", 5), ("20", 3), ("+Inf", 5)])
        with pytest.raises(ExpositionError, match="not cumulative"):
            parse_prometheus(doc)

    def test_histogram_unsorted_bounds_rejected(self):
        doc = self._histogram_doc([("20", 1), ("10", 1), ("+Inf", 2)])
        with pytest.raises(ExpositionError, match="not increasing"):
            parse_prometheus(doc)

    def test_histogram_inf_count_disagreement_rejected(self):
        doc = self._histogram_doc([("10", 1), ("+Inf", 2)], count=9)
        with pytest.raises(ExpositionError, match="!= _count"):
            parse_prometheus(doc)

    def test_histogram_without_buckets_rejected(self):
        doc = "# TYPE h histogram\nh_sum 0\nh_count 0\n"
        with pytest.raises(ExpositionError, match="no buckets"):
            parse_prometheus(doc)

    def test_inf_and_nan_values_parse(self):
        doc = "# TYPE a gauge\na +Inf\n# TYPE b gauge\nb NaN\n"
        families = parse_prometheus(doc)
        assert families["a"].samples[0][2] == math.inf
        assert math.isnan(families["b"].samples[0][2])

    def test_family_repr_mentions_sample_count(self):
        family = MetricFamily("a", "gauge")
        assert "a" in repr(family)


class TestConstantLabels:
    """Constant labels + the cluster merge (shard="<id>" series)."""

    def test_labeled_render_round_trips_strict_parse(self, snapshot):
        text = render_prometheus(snapshot, labels={"shard": "3"})
        families = parse_prometheus(text)  # strict: must stay legal
        for family in families.values():
            for _, labels, _ in family.samples:
                assert labels["shard"] == "3"
        latency = families["repro_service_plan_latency_us"]
        buckets = [
            (labels["le"], value)
            for name, labels, value in latency.samples
            if name.endswith("_bucket")
        ]
        assert buckets == [("16", 1.0), ("64", 3.0), ("+Inf", 4.0)]

    def test_label_values_are_escaped(self, snapshot):
        text = render_prometheus(snapshot, labels={"env": 'a"b\\c\nd'})
        assert '\\"' in text and "\\\\" in text and "\\n" in text
        families = parse_prometheus(text)
        sample = families["repro_sim_ni_buffer_peak"].samples[0]
        assert sample[1]["env"] == 'a"b\\c\nd'

    def test_invalid_label_names_rejected(self, snapshot):
        with pytest.raises(ExpositionError):
            render_prometheus(snapshot, labels={"0bad": "x"})
        with pytest.raises(ExpositionError):
            # "le" is reserved for histogram buckets.
            render_prometheus(snapshot, labels={"le": "x"})

    def test_cluster_merge_one_type_header_per_family(self, snapshot):
        from repro.obs import render_prometheus_cluster

        text = render_prometheus_cluster({"0": snapshot, "1": snapshot})
        assert text.count("# TYPE repro_service_plan_latency_us histogram") == 1
        families = parse_prometheus(text)  # strict across merged shards
        latency = families["repro_service_plan_latency_us"]
        shards = {
            labels["shard"]
            for name, labels, _ in latency.samples
            if name.endswith("_count")
        }
        assert shards == {"0", "1"}

    def test_cluster_merge_rejects_empty_and_reserved(self, snapshot):
        from repro.obs import render_prometheus_cluster

        with pytest.raises(ExpositionError):
            render_prometheus_cluster({})
        with pytest.raises(ExpositionError):
            render_prometheus_cluster({"0": snapshot}, label="le")


class TestPerLabelSetHistograms:
    """The strict parser validates each labeled bucket group on its own."""

    def test_multi_shard_histograms_accepted(self):
        text = (
            "# HELP repro_lat_us h\n"
            "# TYPE repro_lat_us histogram\n"
            'repro_lat_us_bucket{le="1",shard="0"} 1\n'
            'repro_lat_us_bucket{le="+Inf",shard="0"} 2\n'
            "repro_lat_us_count{shard=\"0\"} 2\n"
            "repro_lat_us_sum{shard=\"0\"} 3.0\n"
            'repro_lat_us_bucket{le="1",shard="1"} 5\n'
            'repro_lat_us_bucket{le="+Inf",shard="1"} 9\n'
            "repro_lat_us_count{shard=\"1\"} 9\n"
            "repro_lat_us_sum{shard=\"1\"} 40.0\n"
        )
        families = parse_prometheus(text)
        assert len(families["repro_lat_us"].samples) == 8

    def test_one_broken_group_still_rejected(self):
        # Shard 1's buckets are non-cumulative; shard 0 being valid
        # must not mask that.
        text = (
            "# TYPE repro_lat_us histogram\n"
            'repro_lat_us_bucket{le="1",shard="0"} 1\n'
            'repro_lat_us_bucket{le="+Inf",shard="0"} 2\n'
            "repro_lat_us_count{shard=\"0\"} 2\n"
            'repro_lat_us_bucket{le="1",shard="1"} 5\n'
            'repro_lat_us_bucket{le="+Inf",shard="1"} 3\n'
            "repro_lat_us_count{shard=\"1\"} 3\n"
        )
        with pytest.raises(ExpositionError):
            parse_prometheus(text)

    def test_missing_inf_in_one_group_rejected(self):
        text = (
            "# TYPE repro_lat_us histogram\n"
            'repro_lat_us_bucket{le="1",shard="0"} 1\n'
            'repro_lat_us_bucket{le="+Inf",shard="0"} 2\n'
            'repro_lat_us_bucket{le="1",shard="1"} 5\n'
        )
        with pytest.raises(ExpositionError):
            parse_prometheus(text)
