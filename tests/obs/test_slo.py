"""SLO burn-rate alerting: specs, windows, cooldown, sweep replays."""

from __future__ import annotations

import json

import pytest

from repro.obs import BurnRateTracker, SLOSet, SLOSpec, default_slos
from repro.obs.slo import DEFAULT_BURN_THRESHOLD, FAST_WINDOW_S, SLOW_WINDOW_S


def spec(objective=0.99, **kwargs) -> SLOSpec:
    return SLOSpec(name="test_slo", objective=objective, **kwargs)


class TestSpec:
    def test_budget_is_one_minus_objective(self):
        assert spec(0.99).budget == pytest.approx(0.01)
        assert spec(0.95).budget == pytest.approx(0.05)

    @pytest.mark.parametrize("bad", [0.0, 1.0, -0.5, 1.5])
    def test_objective_must_be_a_proper_fraction(self, bad):
        with pytest.raises(ValueError):
            spec(bad)

    def test_default_slos_cover_the_observatory(self):
        slos = default_slos()
        names = [s.name for s in slos]
        assert names == [
            "plan_latency_p99",
            "request_errors",
            "session_slowdown",
            "delivery_coverage",
        ]
        by_name = {s.name: s for s in slos}
        assert by_name["plan_latency_p99"].bound == 50_000.0
        assert by_name["session_slowdown"].bound == 8.0
        for s in slos:
            assert s.description


class TestBurnRateTracker:
    def test_all_good_burns_nothing(self):
        tracker = BurnRateTracker(spec(), clock=lambda: 0.0)
        for i in range(50):
            tracker.record(True, t=float(i))
        assert tracker.burn_rate(FAST_WINDOW_S, t=50.0) == 0.0
        assert tracker.check(t=50.0) is None

    def test_total_failure_fires_both_windows(self):
        tracker = BurnRateTracker(spec(), clock=lambda: 0.0)
        for i in range(10):
            tracker.record(False, t=float(i))
        alert = tracker.check(t=10.0)
        assert alert is not None
        # 100% bad over a 1% budget: burn rate 100 in both windows.
        assert alert.fast_burn == pytest.approx(100.0)
        assert alert.slow_burn == pytest.approx(100.0)
        assert alert.threshold == DEFAULT_BURN_THRESHOLD

    def test_short_spike_does_not_page(self):
        # A long good history inside the slow window absorbs a fast
        # spike: the multi-window AND is exactly what stops the page.
        tracker = BurnRateTracker(spec(), clock=lambda: 0.0)
        for i in range(1000):
            tracker.record(True, t=float(i))
        for i in range(10):
            tracker.record(False, t=3500.0 + i * 0.1)
        now = 3501.0
        assert tracker.burn_rate(FAST_WINDOW_S, t=now) >= DEFAULT_BURN_THRESHOLD
        assert tracker.burn_rate(SLOW_WINDOW_S, t=now) < DEFAULT_BURN_THRESHOLD
        assert tracker.check(t=now) is None

    def test_weighted_events(self):
        tracker = BurnRateTracker(spec(0.5), clock=lambda: 0.0)
        tracker.record(True, weight=3.0, t=0.0)
        tracker.record(False, weight=1.0, t=1.0)
        # bad fraction 0.25 over a 0.5 budget.
        assert tracker.burn_rate(FAST_WINDOW_S, t=1.0) == pytest.approx(0.5)

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            BurnRateTracker(spec()).record(True, weight=-1.0, t=0.0)

    def test_bad_window_pair_rejected(self):
        with pytest.raises(ValueError):
            BurnRateTracker(spec(), fast_window=0.0)
        with pytest.raises(ValueError):
            BurnRateTracker(spec(), fast_window=60.0, slow_window=30.0)

    def test_events_prune_past_the_slow_window(self):
        tracker = BurnRateTracker(spec(), clock=lambda: 0.0)
        tracker.record(False, t=0.0)
        tracker.record(True, t=SLOW_WINDOW_S + 100.0)
        assert len(tracker._events) == 1
        assert tracker.burn_rate(SLOW_WINDOW_S, t=SLOW_WINDOW_S + 100.0) == 0.0

    def test_snapshot_shape(self):
        tracker = BurnRateTracker(spec(), clock=lambda: 0.0)
        tracker.record(True, t=0.0)
        tracker.record(False, t=1.0)
        snap = tracker.snapshot(t=1.0)
        assert snap["total_good"] == 1.0
        assert snap["total_bad"] == 1.0
        assert snap["fast_burn"] == pytest.approx(50.0)
        assert snap["alerting"] is True
        json.dumps(snap)  # JSON-ready by contract


class TestSLOSet:
    def test_records_route_to_named_trackers(self):
        slos = SLOSet(clock=lambda: 0.0)
        assert set(slos.trackers) == {s.name for s in default_slos()}
        slos.record("request_errors", True, t=0.0)
        assert slos.trackers["request_errors"]._total_good == 1.0
        with pytest.raises(KeyError):
            slos.record("nonsense", True, t=0.0)

    def test_cooldown_one_heartbeat_per_fast_window(self):
        slos = SLOSet([spec()], clock=lambda: 0.0)
        for i in range(100):
            slos.record("test_slo", False, t=float(i))
        # 100 s of sustained burn < one fast window: exactly one alert.
        assert len(slos.alert_log) == 1
        slos.record("test_slo", False, t=FAST_WINDOW_S + 1.0)
        assert len(slos.alert_log) == 2

    def test_record_returns_the_fired_alert(self):
        slos = SLOSet([spec()], clock=lambda: 0.0)
        alert = slos.record("test_slo", False, t=0.0)
        assert alert is not None and alert.slo == "test_slo"
        assert slos.record("test_slo", False, t=1.0) is None  # cooling down

    def test_snapshot_is_sorted_and_counts_alerts(self):
        slos = SLOSet(clock=lambda: 0.0)
        slos.record("delivery_coverage", False, t=0.0)
        snap = slos.snapshot(t=0.0)
        assert list(snap["slos"]) == sorted(snap["slos"])
        assert snap["alerts"] == len(slos.alert_log) == 1
        assert snap["slos"]["delivery_coverage"]["alerting"] is True

    def test_alert_dicts_round_trip_as_json(self):
        slos = SLOSet([spec()], clock=lambda: 0.0)
        slos.record("test_slo", False, t=0.0)
        [payload] = json.loads(json.dumps(slos.alert_dicts()))
        assert payload["slo"] == "test_slo"
        assert payload["fast_burn"] == pytest.approx(100.0)


class TestSweepReplays:
    def test_chaos_replay_is_silent_on_clean_records(self):
        from repro.faults import chaos_alert_log

        records = [
            {"complete_destinations": 15, "lost_destinations": 0}
            for _ in range(20)
        ]
        log = chaos_alert_log(records)
        assert log["alerts"] == []
        assert log["records"] == 20
        assert log["slo"]["slos"]["delivery_coverage"]["alerting"] is False

    def test_chaos_replay_fires_on_heavy_loss(self):
        from repro.faults import chaos_alert_log

        records = [
            {"complete_destinations": 7, "lost_destinations": 8}
            for _ in range(5)
        ]
        log = chaos_alert_log(records)
        assert log["alerts"], "majority loss must fire the coverage SLO"
        assert log["alerts"][0]["slo"] == "delivery_coverage"

    def test_chaos_replay_is_deterministic(self):
        from repro.faults import chaos_alert_log, chaos_point

        records = [
            chaos_point("baseline", 0, 15, 4),
            chaos_point("root_child", 0, 15, 4),
        ]
        first = json.dumps(chaos_alert_log(records), sort_keys=True)
        second = json.dumps(chaos_alert_log(records), sort_keys=True)
        assert first == second

    def test_real_root_child_fires_while_baseline_stays_silent(self):
        from repro.faults import chaos_alert_log, chaos_point

        baseline = [chaos_point("baseline", 0, 15, 4)]
        assert chaos_alert_log(baseline)["alerts"] == []
        crash = baseline + [chaos_point("root_child", 0, 15, 4)]
        log = chaos_alert_log(crash)
        assert [a["slo"] for a in log["alerts"]] == ["delivery_coverage"]

    def test_sessions_replay_uses_per_session_slowdowns(self):
        from repro.sessions import sessions_alert_log

        good = [{"slowdowns": [1.0, 2.0, 3.0]} for _ in range(10)]
        assert sessions_alert_log(good)["alerts"] == []
        # Past the 8x bound for every session: the SLO must fire.
        bad = [{"slowdowns": [9.0, 10.0, 8.5]} for _ in range(10)]
        log = sessions_alert_log(bad)
        assert log["alerts"] and log["alerts"][0]["slo"] == "session_slowdown"

    def test_sessions_replay_falls_back_to_max_slowdown(self):
        from repro.sessions import sessions_alert_log

        records = [{"completed": 6, "max_slowdown": 12.0} for _ in range(4)]
        log = sessions_alert_log(records)
        assert log["alerts"]
        tracker = log["slo"]["slos"]["session_slowdown"]
        assert tracker["total_bad"] == 24.0
