"""Disabled tracing is free: no record objects on the sim hot path."""

from __future__ import annotations

import repro.obs.tracer as tracer_mod
import repro.sim.monitor as monitor_mod
from repro.machine import Machine
from repro.obs import Tracer


def _counting(cls, counter):
    def make(*args, **kwargs):
        counter.append(1)
        return cls(*args, **kwargs)

    return make


def test_untraced_run_allocates_no_records(monkeypatch):
    allocations = []
    monkeypatch.setattr(
        monitor_mod, "TraceRecord", _counting(monitor_mod.TraceRecord, allocations)
    )
    monkeypatch.setattr(
        tracer_mod, "TraceEvent", _counting(tracer_mod.TraceEvent, allocations)
    )
    machine = Machine.irregular(seed=0)  # no tracer, collect_trace off
    hosts = machine.hosts
    result = machine.multicast(hosts[0], hosts[1:16], 1024)
    assert result.latency > 0
    assert allocations == [], "disabled trace still allocated record objects"


def test_same_run_with_tracer_does_allocate(monkeypatch):
    # The counter harness itself must be able to see allocations,
    # otherwise the zero above is vacuous.
    allocations = []
    monkeypatch.setattr(
        tracer_mod, "TraceEvent", _counting(tracer_mod.TraceEvent, allocations)
    )
    machine = Machine.irregular(seed=0, tracer=Tracer())
    hosts = machine.hosts
    machine.multicast(hosts[0], hosts[1:16], 1024)
    assert allocations, "enabled tracer recorded nothing"


def test_traced_and_untraced_latencies_agree():
    untraced = Machine.irregular(seed=0)
    traced = Machine.irregular(seed=0, tracer=Tracer())
    a = untraced.multicast(untraced.hosts[0], untraced.hosts[1:16], 1024)
    b = traced.multicast(traced.hosts[0], traced.hosts[1:16], 1024)
    assert a.latency == b.latency, "observation changed the simulation"
