"""Run manifests: provenance that serializes and never raises."""

from __future__ import annotations

import dataclasses
import json

from repro.obs import git_sha, run_manifest
from repro.obs.manifest import MANIFEST_SCHEMA


def test_manifest_core_keys():
    m = run_manifest(seed=7)
    assert m["schema"] == MANIFEST_SCHEMA
    assert m["package"] == "repro"
    assert m["seed"] == 7
    for key in ("version", "git_sha", "python", "platform", "argv", "created_unix", "created_utc"):
        assert key in m, key


def test_manifest_is_json_serializable():
    @dataclasses.dataclass
    class P:
        n: int = 64
        m: int = 8

    m = run_manifest(params=P(), seed=1, extra={"kind": "test"})
    round_tripped = json.loads(json.dumps(m))
    assert round_tripped["params"] == {"n": 64, "m": 8}
    assert round_tripped["kind"] == "test"


def test_manifest_opaque_params_fall_back_to_repr():
    m = run_manifest(params=object())
    assert isinstance(m["params"], str)
    json.dumps(m)


def test_git_sha_in_this_checkout():
    sha = git_sha()
    assert sha is None or (len(sha) == 40 and set(sha) <= set("0123456789abcdef"))


def test_git_sha_outside_a_repo(tmp_path):
    assert git_sha(cwd=str(tmp_path)) is None
