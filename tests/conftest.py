"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.mcast.orderings import cco_ordering
from repro.network.irregular import build_irregular_network
from repro.network.karyn import KAryNCube
from repro.network.updown import UpDownRouter
from repro.params import SystemParams
from repro.sim import Environment


@pytest.fixture(autouse=True)
def _reset_global_metrics():
    """Drop runtime provider registrations between tests.

    Simulators and plan servers register providers in
    ``repro.obs.GLOBAL_METRICS`` as a side effect of running; without a
    reset, metrics-asserting tests see whatever ran before them and
    become order-dependent.
    """
    from repro.obs import GLOBAL_METRICS
    from repro.sessions import SESSION_METRICS

    yield
    GLOBAL_METRICS.reset()
    # Session counters live outside the registry (they lazily
    # re-register as the "sessions" provider) — zero them too, or a
    # metrics-asserting session test sees its predecessors' runs.
    SESSION_METRICS.reset()


@pytest.fixture
def env() -> Environment:
    """A fresh simulation environment."""
    return Environment()


@pytest.fixture(scope="session")
def paper_topology():
    """One seeded paper-scale irregular network (64 hosts, 16 switches)."""
    return build_irregular_network(seed=42)


@pytest.fixture(scope="session")
def paper_router(paper_topology):
    return UpDownRouter(paper_topology)


@pytest.fixture(scope="session")
def paper_ordering(paper_topology, paper_router):
    return cco_ordering(paper_topology, paper_router)


@pytest.fixture(scope="session")
def small_topology():
    """A small irregular network (4 switches, 8 hosts) for fast sims."""
    return build_irregular_network(n_switches=4, switch_ports=6, hosts_per_switch=2, seed=7)


@pytest.fixture(scope="session")
def small_router(small_topology):
    return UpDownRouter(small_topology)


@pytest.fixture(scope="session")
def torus_4x4():
    return KAryNCube(4, 2)


@pytest.fixture
def fast_params() -> SystemParams:
    """Simple round-number timing for hand-checkable sims."""
    return SystemParams(
        t_s=10.0,
        t_r=10.0,
        t_ns=1.0,
        t_nr=1.0,
        packet_bytes=64,
        t_switch=0.0,
        link_bandwidth=64.0,
        t_dma=0.5,
    )
