"""End-to-end reproducibility: identical seeds, identical results.

The whole point of a seeded simulation study is that anyone can replay
a figure bit-for-bit.  These tests rebuild every layer from scratch —
topology, router, ordering, simulator — twice, and demand exact
equality of the outputs.
"""

from __future__ import annotations

from repro import Machine
from repro.analysis import ExperimentConfig
from repro.analysis.experiments import kbinomial_optimal, sweep_latencies
from repro.mcast import ReliableMulticastSimulator
from repro.network import UpDownRouter, build_irregular_network


def test_machine_end_to_end_replay():
    results = []
    for _ in range(2):
        machine = Machine.irregular(seed=7)
        r = machine.multicast(machine.hosts[3], machine.hosts[4:20], nbytes=1024)
        results.append((r.latency, r.packet_completion, tuple(sorted(r.peak_buffers.items()))))
    assert results[0] == results[1]


def test_experiment_sweep_replay():
    cfg = ExperimentConfig(n_topologies=1, n_dest_sets=3, seed=99)
    a = sweep_latencies(15, 4, kbinomial_optimal, cfg)
    b = sweep_latencies(15, 4, kbinomial_optimal, cfg)
    assert a == b


def test_reliable_replay_with_losses():
    results = []
    for _ in range(2):
        topology = build_irregular_network(seed=4)
        router = UpDownRouter(topology)
        machine = Machine(topology, router, sorted(topology.hosts))
        sim = ReliableMulticastSimulator(topology, router, loss_rate=0.1, loss_seed=5)
        tree = machine.tree_for(machine.hosts[0], machine.hosts[1:17], 8)
        r = sim.run(tree, 8)
        results.append((r.latency, sim.last_dropped, r.packet_completion))
    assert results[0] == results[1]


def test_channel_models_independent_configs():
    # Same machine spec, different channel model: both deterministic,
    # possibly different values.
    lat = {}
    for model in ("path", "worm"):
        runs = []
        for _ in range(2):
            machine = Machine.irregular(seed=2, channel_model=model)
            runs.append(
                machine.multicast(machine.hosts[0], machine.hosts[1:32], 2048).latency
            )
        assert runs[0] == runs[1]
        lat[model] = runs[0]
    assert set(lat) == {"path", "worm"}
