"""Repository-integrity checks: docs, benches, and examples stay wired.

Documentation that references missing files is worse than no
documentation; these tests keep DESIGN.md's experiment index, the
benchmark directory, and the examples directory consistent.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent


def test_required_documents_exist():
    for name in (
        "README.md",
        "DESIGN.md",
        "EXPERIMENTS.md",
        "LICENSE",
        "CITATION.cff",
        "docs/THEORY.md",
        "docs/ARCHITECTURE.md",
        "docs/PAPER_MAP.md",
    ):
        assert (REPO / name).is_file(), f"missing {name}"


def test_design_bench_index_matches_files():
    design = (REPO / "DESIGN.md").read_text()
    referenced = set(re.findall(r"`(bench_[a-z0-9_]+\.py)`", design))
    assert referenced, "DESIGN.md lists no bench targets?"
    missing = [b for b in referenced if not (REPO / "benchmarks" / b).is_file()]
    assert not missing, f"DESIGN.md references missing benches: {missing}"


def test_every_bench_file_is_indexed_in_design():
    design = (REPO / "DESIGN.md").read_text()
    on_disk = {
        p.name
        for p in (REPO / "benchmarks").glob("bench_*.py")
        # The perf bench tracks engine speed, not a paper artifact.
        if p.name != "bench_simulator_perf.py"
    }
    unindexed = [b for b in sorted(on_disk) if b not in design]
    assert not unindexed, f"benches missing from DESIGN.md index: {unindexed}"


def test_every_bench_defines_a_test():
    for bench in (REPO / "benchmarks").glob("bench_*.py"):
        text = bench.read_text()
        assert re.search(r"^def test_", text, re.M), f"{bench.name} has no test"


def test_every_example_is_runnable_script():
    examples = list((REPO / "examples").glob("*.py"))
    assert len(examples) >= 3  # the deliverable minimum; we ship more
    for example in examples:
        text = example.read_text()
        assert '__main__' in text, f"{example.name} lacks a main guard"
        assert text.lstrip().startswith(("#!", '"""', "#")), f"{example.name} lacks a header"


def test_experiments_covers_every_experiment_id():
    experiments = (REPO / "EXPERIMENTS.md").read_text()
    design = (REPO / "DESIGN.md").read_text()
    ids = set(re.findall(r"^\| (E\d+|A\d+) \|", design, re.M))
    missing = [i for i in sorted(ids) if not re.search(rf"\b{i} —", experiments)]
    assert not missing, f"EXPERIMENTS.md lacks sections for: {missing}"


def test_paper_map_symbols_resolve():
    """Spot-check that PAPER_MAP.md's code references are real."""
    import repro

    for symbol in (
        "optimal_k",
        "build_kbinomial_tree",
        "coverage",
        "fpfs_schedule",
        "MulticastSimulator",
    ):
        assert hasattr(repro, symbol)