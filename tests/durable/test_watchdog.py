"""Worker watchdog: deadlines, silent deaths, retry budgets."""

from __future__ import annotations

import os
import time
from functools import partial

import pytest

from repro.durable import DURABLE_METRICS, ChunkRetryError, run_chunks_watchdog
from repro.durable.watchdog import ChunkFailure


def well_behaved(x):
    return x * 10


def hang_forever(x):
    time.sleep(600)


def die_silently(x):
    os._exit(9)  # no exception, no pipe message: an OOM-kill stand-in


def flaky_until_marker(x, marker):
    """Dies on the first attempt, succeeds once the marker file exists."""
    if not os.path.exists(marker):
        with open(marker, "w") as fh:
            fh.write("tried")
        os._exit(1)
    return x * 10


def immediate_delays():
    return iter(())


def run(measure, chunks, **overrides):
    kwargs = dict(
        workers=2,
        chunk_timeout=0.5,
        chunk_retries=2,
        retry_delays=immediate_delays,
    )
    kwargs.update(overrides)
    done = {}
    failures = run_chunks_watchdog(
        measure, chunks, on_chunk_done=lambda i, r: done.__setitem__(i, r), **kwargs
    )
    return done, failures


class TestWatchdog:
    def test_healthy_chunks_all_complete(self):
        chunks = [(i, [(i * 2, {"x": i * 2}), (i * 2 + 1, {"x": i * 2 + 1})]) for i in range(3)]
        done, failures = run(well_behaved, chunks)
        assert failures == []
        assert done == {
            0: [(0, 0), (1, 10)],
            1: [(2, 20), (3, 30)],
            2: [(4, 40), (5, 50)],
        }

    def test_hung_chunk_killed_and_budget_exhausted(self):
        before = DURABLE_METRICS.snapshot()
        done, failures = run(hang_forever, [(0, [(0, {"x": 1})])], chunk_timeout=0.15)
        assert done == {}
        assert len(failures) == 1
        failure = failures[0]
        assert isinstance(failure, ChunkFailure)
        assert failure.chunk_index == 0 and failure.points == 1
        assert failure.attempts == 2
        assert "deadline" in failure.reason
        after = DURABLE_METRICS.snapshot()
        assert after["chunk_retries"] - before["chunk_retries"] == 1
        assert after["chunk_failures"] - before["chunk_failures"] == 1

    def test_silent_death_detected_with_exit_code(self):
        done, failures = run(die_silently, [(0, [(0, {"x": 1})])])
        assert done == {}
        assert len(failures) == 1
        assert "exit code 9" in failures[0].reason

    def test_flaky_chunk_succeeds_on_retry(self, tmp_path):
        marker = str(tmp_path / "marker")
        measure = partial(flaky_until_marker, marker=marker)
        done, failures = run(measure, [(0, [(0, {"x": 7})])], chunk_retries=3)
        assert failures == []
        assert done == {0: [(0, 70)]}

    def test_failure_record_serializes_for_manifests(self):
        failure = ChunkFailure(chunk_index=3, points=5, attempts=2, reason="killed")
        assert failure.to_dict() == {
            "chunk_index": 3,
            "points": 5,
            "attempts": 2,
            "reason": "killed",
        }


class TestSweepIntegration:
    def test_watchdog_failure_raises_chunk_retry_error(self):
        from repro.analysis.sweep import run_sweep
        from repro.service.client import RetryPolicy

        with pytest.raises(ChunkRetryError, match="exhausted their retry budget"):
            run_sweep(
                hang_forever,
                {"x": [1]},
                chunk_timeout=0.15,
                chunk_retries=2,
                retry_policy=RetryPolicy(base_delay=0.0, jitter=0.0),
            )

    def test_skip_mode_records_failures_in_store_manifest(self, tmp_path):
        import json

        from repro.analysis.sweep import run_sweep
        from repro.service.client import RetryPolicy

        store = tmp_path / "store.json"
        points = run_sweep(
            die_silently,
            {"x": [1, 2]},
            chunk_timeout=2.0,
            chunk_retries=1,
            retry_policy=RetryPolicy(base_delay=0.0, jitter=0.0),
            on_chunk_failure="skip",
            store=store,
        )
        assert [p.value for p in points] == [None, None]
        manifest = json.loads(store.read_text())["manifest"]
        assert manifest["chunk_failures"]
        assert manifest["chunk_failures"][0]["attempts"] == 1
