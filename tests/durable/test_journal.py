"""Chunk journal: write-ahead semantics, torn tails, tamper detection."""

from __future__ import annotations

import json

import pytest

from repro.durable import (
    CheckpointMismatchError,
    ChunkJournal,
    StoreCorruptionError,
    StoreVersionError,
    sweep_fingerprint,
)


def measure_a(x):
    return x * 2


def measure_b(x):
    return x * 3


COMBOS = [{"x": 1}, {"x": 2}, {"x": 3}, {"x": 4}]
FP = sweep_fingerprint(measure_a, COMBOS, [0, 1, 2, 3], 2)


class TestFingerprint:
    def test_deterministic(self):
        assert FP == sweep_fingerprint(measure_a, COMBOS, [0, 1, 2, 3], 2)

    def test_sensitive_to_every_input(self):
        base = FP
        assert sweep_fingerprint(measure_b, COMBOS, [0, 1, 2, 3], 2) != base
        assert sweep_fingerprint(measure_a, COMBOS[:3], [0, 1, 2], 2) != base
        assert sweep_fingerprint(measure_a, COMBOS, [0, 1, 2], 2) != base
        assert sweep_fingerprint(measure_a, COMBOS, [0, 1, 2, 3], 3) != base

    def test_partial_binding_is_part_of_identity(self):
        from functools import partial

        one = sweep_fingerprint(partial(measure_a), COMBOS, [0], 1)
        two = sweep_fingerprint(partial(measure_b), COMBOS, [0], 1)
        assert one != two


class TestJournalRoundTrip:
    def test_append_then_reload(self, tmp_path):
        path = tmp_path / "ck.journal"
        journal = ChunkJournal(path, FP)
        journal.append(0, [(0, 2), (1, 4)])
        journal.append(1, [(2, 6), (3, 8)])
        assert journal.appended_chunks == 2

        reopened = ChunkJournal(path, FP)
        assert reopened.resumed_chunks == 2
        assert reopened.completed == {0: [(0, 2), (1, 4)], 1: [(2, 6), (3, 8)]}
        assert 0 in reopened and 1 in reopened and 2 not in reopened

    def test_values_roundtrip_like_json(self, tmp_path):
        # Floats, nulls, nested structures: exactly JSON semantics, the
        # same as SweepStore — the byte-identity guarantee rests on it.
        path = tmp_path / "ck.journal"
        value = {"latency": 216.39999999999998, "curve": [1, None, [2.5]]}
        ChunkJournal(path, FP).append(0, [(0, value)])
        recovered = ChunkJournal(path, FP).completed[0][0][1]
        assert recovered == json.loads(json.dumps(value))
        assert recovered["latency"] == 216.39999999999998  # exact float

    def test_fresh_journal_writes_header_atomically(self, tmp_path):
        path = tmp_path / "ck.journal"
        ChunkJournal(path, FP)
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        header = json.loads(lines[0])
        assert header["kind"] == "header" and header["fingerprint"] == FP


class TestCrashRecovery:
    def test_torn_tail_self_heals(self, tmp_path):
        path = tmp_path / "ck.journal"
        journal = ChunkJournal(path, FP)
        journal.append(0, [(0, 2), (1, 4)])
        intact = path.read_bytes()
        # A crash mid-append leaves a prefix of the next line.
        path.write_bytes(intact + b'{"chunk": 1, "kind": "chu')

        recovered = ChunkJournal(path, FP)
        assert recovered.completed == {0: [(0, 2), (1, 4)]}
        assert path.read_bytes() == intact  # tail truncated away
        # Appends continue on the clean boundary.
        recovered.append(1, [(2, 6)])
        assert ChunkJournal(path, FP).completed[1] == [(2, 6)]

    def test_torn_line_missing_newline_dropped(self, tmp_path):
        path = tmp_path / "ck.journal"
        journal = ChunkJournal(path, FP)
        journal.append(0, [(0, 2)])
        raw = path.read_bytes()
        path.write_bytes(raw[:-1])  # the newline itself never landed
        assert ChunkJournal(path, FP).completed == {}

    def test_tampered_line_raises_not_heals(self, tmp_path):
        # A *complete* line with a bad CRC cannot be a torn write — it
        # is tampering or bit rot, and must refuse, not self-heal.
        path = tmp_path / "ck.journal"
        ChunkJournal(path, FP).append(0, [(0, 111)])
        path.write_text(path.read_text().replace("111", "999"))
        with pytest.raises(StoreCorruptionError, match="checksum"):
            ChunkJournal(path, FP)

    def test_wrong_fingerprint_refused(self, tmp_path):
        path = tmp_path / "ck.journal"
        ChunkJournal(path, FP).append(0, [(0, 2)])
        other = sweep_fingerprint(measure_a, COMBOS, [0, 1], 1)
        with pytest.raises(CheckpointMismatchError, match="different sweep"):
            ChunkJournal(path, other)

    def test_wrong_journal_version_refused(self, tmp_path):
        from repro.durable.journal import _encode_line

        path = tmp_path / "ck.journal"
        path.write_text(
            _encode_line({"kind": "header", "journal_version": 99, "fingerprint": FP})
        )
        with pytest.raises(StoreVersionError, match="journal version 99"):
            ChunkJournal(path, FP)

    def test_headerless_file_refused(self, tmp_path):
        path = tmp_path / "ck.journal"
        path.write_text("")
        with pytest.raises(StoreCorruptionError, match="no readable header"):
            ChunkJournal(path, FP)
