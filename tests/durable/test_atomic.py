"""Atomic JSON artifacts: write/verify round trips and corruption typing."""

from __future__ import annotations

import json
import os

import pytest

from repro.durable import (
    StoreCorruptionError,
    StoreVersionError,
    atomic_write_json,
    atomic_write_text,
    crc32_of,
    quarantine,
    safe_load_json,
)


class TestAtomicWrite:
    def test_roundtrip_with_crc(self, tmp_path):
        path = tmp_path / "doc.json"
        doc = {"version": 3, "records": {"a": [1, 2.5, None], "b": "x"}}
        atomic_write_json(path, doc)
        loaded = safe_load_json(path, expected_version=3, require_crc=True)
        assert loaded == doc  # CRC key stripped; logical document intact

    def test_write_replaces_not_appends(self, tmp_path):
        path = tmp_path / "doc.json"
        atomic_write_json(path, {"x": 1})
        atomic_write_json(path, {"x": 2})
        assert safe_load_json(path)["x"] == 2

    def test_no_temp_droppings_after_write(self, tmp_path):
        atomic_write_json(tmp_path / "doc.json", {"x": 1})
        atomic_write_text(tmp_path / "note.txt", "hello")
        assert sorted(p.name for p in tmp_path.iterdir()) == ["doc.json", "note.txt"]

    def test_failed_serialization_leaves_target_intact(self, tmp_path):
        path = tmp_path / "doc.json"
        atomic_write_json(path, {"x": 1})
        with pytest.raises(TypeError):
            atomic_write_json(path, {"x": object()}, crc=False)
        assert safe_load_json(path)["x"] == 1
        assert [p.name for p in tmp_path.iterdir()] == ["doc.json"]

    def test_crc_with_default_coercion_refused(self, tmp_path):
        with pytest.raises(ValueError, match="pure JSON"):
            atomic_write_json(tmp_path / "d.json", {"x": object()}, default=repr)

    def test_non_dict_document_refused(self, tmp_path):
        with pytest.raises(TypeError, match="JSON objects"):
            atomic_write_json(tmp_path / "d.json", [1, 2, 3])


class TestSafeLoad:
    def test_truncated_file_is_typed_corruption(self, tmp_path):
        path = tmp_path / "doc.json"
        atomic_write_json(path, {"records": list(range(100))})
        raw = path.read_text()
        path.write_text(raw[: len(raw) // 2])
        with pytest.raises(StoreCorruptionError, match="not valid JSON"):
            safe_load_json(path)

    def test_missing_file_is_typed_corruption(self, tmp_path):
        with pytest.raises(StoreCorruptionError, match="cannot read"):
            safe_load_json(tmp_path / "nope.json")

    def test_bit_flip_fails_checksum(self, tmp_path):
        path = tmp_path / "doc.json"
        atomic_write_json(path, {"value": 12345})
        path.write_text(path.read_text().replace("12345", "12346"))
        with pytest.raises(StoreCorruptionError, match="checksum"):
            safe_load_json(path)

    def test_non_object_document_rejected(self, tmp_path):
        path = tmp_path / "doc.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(StoreCorruptionError, match="expected an object"):
            safe_load_json(path)

    def test_version_mismatch_is_typed(self, tmp_path):
        path = tmp_path / "doc.json"
        atomic_write_json(path, {"version": 2, "records": {}})
        with pytest.raises(StoreVersionError, match="schema version 2"):
            safe_load_json(path, expected_version=1)

    def test_unversioned_document_passes_version_check(self, tmp_path):
        # Artifacts written before the schema stamp stay loadable.
        path = tmp_path / "doc.json"
        atomic_write_json(path, {"records": {}})
        assert safe_load_json(path, expected_version=1) == {"records": {}}

    def test_missing_crc_tolerated_unless_required(self, tmp_path):
        path = tmp_path / "doc.json"
        path.write_text(json.dumps({"x": 1}))
        assert safe_load_json(path) == {"x": 1}
        with pytest.raises(StoreCorruptionError, match="no 'crc32' checksum"):
            safe_load_json(path, require_crc=True)

    def test_crc_is_format_independent(self, tmp_path):
        # The checksum covers the canonical serialization: re-indenting
        # or re-ordering keys on disk must not invalidate it.
        doc = {"b": 2, "a": 1}
        doc["crc32"] = crc32_of(doc)
        path = tmp_path / "doc.json"
        path.write_text(json.dumps(doc, indent=4, sort_keys=True))
        assert safe_load_json(path, require_crc=True) == {"a": 1, "b": 2}


def test_quarantine_moves_artifact_aside(tmp_path):
    path = tmp_path / "doc.json"
    path.write_text("garbage")
    moved = quarantine(path)
    assert moved == f"{path}.corrupt"
    assert not path.exists()
    assert os.path.exists(moved)
