"""The cardinal invariant: SIGKILL a sweep, resume it, get identical bytes.

A child process runs a checkpointed sweep with a deliberately slow
measure; the parent SIGKILLs it once the journal shows progress, reruns
the identical command to completion, and compares the resulting store's
``records`` byte-for-byte against an uninterrupted control run.  Only
the manifest (timestamps, host) may differ — the paper's numbers may
not.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import textwrap
import time

import pytest

#: The sweep the child runs: 12 points in 6 chunks, ~60 ms per point,
#: so the parent has a wide window to kill inside.
CHILD_SCRIPT = textwrap.dedent(
    """
    import sys
    import time

    from repro.analysis.sweep import run_sweep

    def slow_measure(n, m):
        time.sleep(0.06)
        return {"v": n * 1000 + m, "f": n / m}

    store, checkpoint = sys.argv[1], sys.argv[2]
    run_sweep(
        slow_measure,
        {"n": [1, 2, 3], "m": [1, 2, 3, 4]},
        chunk_size=2,
        store=store,
        checkpoint=checkpoint,
    )
    print("COMPLETE")
    """
)


def _launch(tmp_path, store_name):
    return subprocess.Popen(
        [
            sys.executable,
            "-c",
            CHILD_SCRIPT,
            str(tmp_path / store_name),
            str(tmp_path / "sweep.ckpt"),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )


def _journal_chunk_lines(path) -> int:
    if not os.path.exists(path):
        return 0
    with open(path, "r", encoding="utf-8") as fh:
        return sum(1 for line in fh if '"kind": "chunk"' in line or '"kind":"chunk"' in line)


def test_sigkill_then_resume_is_byte_identical(tmp_path):
    checkpoint = tmp_path / "sweep.ckpt"

    # Round 1: kill mid-flight, after >= 2 chunks have been journaled
    # but well before all 6 are.
    victim = _launch(tmp_path, "store.json")
    deadline = time.monotonic() + 30.0
    while _journal_chunk_lines(checkpoint) < 2:
        assert victim.poll() is None, "sweep finished before we could kill it"
        assert time.monotonic() < deadline, "journal never showed progress"
        time.sleep(0.01)
    os.kill(victim.pid, signal.SIGKILL)
    victim.wait(timeout=10)
    assert victim.returncode == -signal.SIGKILL

    killed_at = _journal_chunk_lines(checkpoint)
    assert 2 <= killed_at < 6
    assert not (tmp_path / "store.json").exists()  # store flushes at the end

    # Round 2: identical command, same checkpoint — runs to completion.
    resumed = _launch(tmp_path, "store.json")
    out, err = resumed.communicate(timeout=60)
    assert resumed.returncode == 0, err
    assert "COMPLETE" in out
    # The resumed run journaled only the missing chunks.
    assert _journal_chunk_lines(checkpoint) == 6

    # Control: the same sweep, uninterrupted, in-process, no checkpoint
    # — the values are pure functions of the grid, so the stores must
    # agree byte-for-byte in their records.
    from repro.analysis.sweep import run_sweep

    control_store = tmp_path / "control.json"
    run_sweep(_control_measure, {"n": [1, 2, 3], "m": [1, 2, 3, 4]}, store=control_store)

    resumed_doc = json.loads((tmp_path / "store.json").read_text())
    control_doc = json.loads(control_store.read_text())
    canonical = lambda doc: json.dumps(doc["records"], sort_keys=True)  # noqa: E731
    assert canonical(resumed_doc) == canonical(control_doc)
    assert resumed_doc["records"]  # non-trivial comparison
    assert len(resumed_doc["records"]) == 12


def test_resume_with_changed_grid_is_refused(tmp_path):
    from repro.analysis.sweep import run_sweep
    from repro.durable import CheckpointMismatchError

    checkpoint = tmp_path / "sweep.ckpt"
    run_sweep(_module_measure, {"x": [1, 2]}, checkpoint=checkpoint)
    with pytest.raises(CheckpointMismatchError):
        run_sweep(_module_measure, {"x": [1, 2, 3]}, checkpoint=checkpoint)


def _module_measure(x):
    return x + 1


def _control_measure(n, m):
    return {"v": n * 1000 + m, "f": n / m}
