"""Typed argument validation: garbage is refused before work is scheduled.

Property tests (hypothesis) pin the contract of the two checkers and
the boundaries that use them: no non-positive, NaN, infinite, or
boolean value may reach a sweep, a plan request, or the server's
deadline arithmetic.
"""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.durable import ValidationError, check_positive_int, check_positive_number


class TestCheckPositiveInt:
    @given(st.integers(min_value=1, max_value=10**9))
    def test_valid_integers_pass_through(self, value):
        assert check_positive_int("x", value) == value

    @given(st.integers(max_value=0))
    def test_non_positive_rejected(self, value):
        with pytest.raises(ValidationError, match="must be >="):
            check_positive_int("x", value)

    @given(
        st.one_of(
            st.booleans(),
            st.floats(),
            st.text(max_size=5),
            st.none(),
            st.lists(st.integers(), max_size=2),
        )
    )
    def test_non_integers_rejected(self, value):
        with pytest.raises(ValidationError, match="must be an integer"):
            check_positive_int("x", value)

    def test_minimum_is_configurable(self):
        assert check_positive_int("n", 2, minimum=2) == 2
        with pytest.raises(ValidationError, match=">= 2"):
            check_positive_int("n", 1, minimum=2)


class TestCheckPositiveNumber:
    @given(
        st.one_of(
            st.integers(min_value=1, max_value=10**9),
            st.floats(
                min_value=1e-9, max_value=1e18, allow_nan=False, allow_infinity=False
            ),
        )
    )
    def test_positive_finite_numbers_pass(self, value):
        assert check_positive_number("t", value) == float(value)

    @given(
        st.one_of(
            st.just(float("nan")),
            st.just(float("inf")),
            st.just(float("-inf")),
            st.floats(max_value=0.0, allow_nan=False),
            st.integers(max_value=0),
        )
    )
    def test_nan_inf_and_non_positive_rejected(self, value):
        with pytest.raises(ValidationError, match="positive finite"):
            check_positive_number("t", value)

    @given(st.one_of(st.booleans(), st.text(max_size=5), st.none()))
    def test_non_numbers_rejected(self, value):
        with pytest.raises(ValidationError, match="must be a number"):
            check_positive_number("t", value)


class TestPlanRequestBoundary:
    @given(
        st.one_of(
            st.integers(max_value=1),
            st.booleans(),
            st.floats(),
            st.none(),
        )
    )
    def test_bad_n_rejected_before_planning(self, n):
        from repro.service import PlanRequest

        with pytest.raises(ValidationError):
            PlanRequest(n=n, m=4)

    @given(st.one_of(st.integers(max_value=0), st.booleans(), st.floats()))
    def test_bad_m_rejected_before_planning(self, m):
        from repro.service import PlanRequest

        with pytest.raises(ValidationError):
            PlanRequest(n=8, m=m)

    def test_valid_request_constructs(self):
        from repro.service import PlanRequest

        assert PlanRequest(n=8, m=4).n == 8


class TestMachineParamsBoundary:
    @given(
        st.sampled_from(["t_s", "t_r", "t_step", "t_sq"]),
        st.one_of(
            st.just(float("nan")),
            st.just(float("inf")),
            st.floats(max_value=0.0, allow_nan=False),
        ),
    )
    def test_non_positive_timings_rejected(self, field, value):
        from repro.params import MachineParams

        with pytest.raises(ValidationError):
            MachineParams(**{field: value})


class TestEngineBoundary:
    def test_run_sweep_rejects_bad_engine_arguments(self):
        from repro.analysis.sweep import run_sweep

        def measure(x):
            return x

        for kwargs in (
            {"workers": 0},
            {"workers": 1.5},
            {"chunk_size": -1},
            {"chunk_timeout": float("nan")},
            {"chunk_timeout": 0},
            {"chunk_retries": 0},
            {"on_chunk_failure": "retry"},
        ):
            with pytest.raises(ValidationError):
                run_sweep(measure, {"x": [1]}, **kwargs)

    def test_server_rejects_nan_timeouts(self):
        from repro.service import PlanServer

        with pytest.raises(ValidationError):
            PlanServer(request_timeout=float("nan"))
        with pytest.raises(ValidationError):
            PlanServer(drain_timeout=0.0)
        with pytest.raises(ValidationError):
            PlanServer(max_inflight=0)


class TestCliBoundary:
    def test_cli_refuses_before_any_work(self, capsys):
        from repro.cli import main

        assert main(["fig13a", "--workers", "0"]) == 2
        assert "--workers must be >= 1" in capsys.readouterr().err

    def test_cli_resume_requires_checkpoint(self, capsys):
        from repro.cli import main

        assert main(["fig13a", "--resume"]) == 2
        assert "--resume requires --checkpoint" in capsys.readouterr().err

    def test_cli_resume_requires_existing_file(self, tmp_path, capsys):
        from repro.cli import main

        missing = tmp_path / "never-written.ckpt"
        code = main(
            ["fig13a", "--topologies", "1", "--dest-sets", "1",
             "--checkpoint", str(missing), "--resume"]
        )
        assert code == 2
        assert "does not exist" in capsys.readouterr().err
