#!/usr/bin/env python
"""Scenario: multicast on a cluster with flaky links.

A NOW built from commodity parts drops a fraction of packets (CRC
errors, buffer overruns).  The smart NI's FPFS forwarding buffer —
which §2.5 requires anyway for replication — doubles as a
retransmission store: a receiver that detects a missing packet NACKs
its *tree parent*, which resends from its buffer without involving the
source host (the design point of Verstoep et al., the paper's [12]).

This script sweeps the loss rate and reports delivered latency plus
recovery statistics.  Every run is verified complete: all destinations
hold all packets.

Run:  python examples/reliable_multicast.py
"""

from __future__ import annotations

import random

from repro import (
    UpDownRouter,
    build_irregular_network,
    build_kbinomial_tree,
    cco_ordering,
    chain_for,
    optimal_k,
)
from repro.analysis import render_table
from repro.mcast import ReliableMulticastSimulator


def main() -> None:
    topology = build_irregular_network(seed=6)
    router = UpDownRouter(topology)
    ordering = cco_ordering(topology, router)
    rng = random.Random(3)
    picked = rng.sample(list(topology.hosts), 32)
    chain = chain_for(picked[0], picked[1:], ordering)
    m = 16
    tree = build_kbinomial_tree(chain, optimal_k(len(chain), m))

    rows = []
    for rate in (0.0, 0.01, 0.05, 0.1, 0.2):
        sim = ReliableMulticastSimulator(
            topology, router, loss_rate=rate, loss_seed=8, collect_trace=True
        )
        result = sim.run(tree, m)
        nacks = sim.last_trace.count("nack")
        retransmits = sim.last_trace.count("retransmit")
        rows.append(
            [
                f"{rate:.0%}",
                sim.last_dropped,
                nacks,
                retransmits,
                round(result.latency, 1),
            ]
        )

    print(
        render_table(
            ["loss", "dropped", "NACKs", "retransmits", "latency (us)"],
            rows,
            title=f"Reliable FPFS multicast, 31 destinations, {m} packets",
        )
    )
    print("\nAll runs delivered every packet to every destination exactly once.")


if __name__ == "__main__":
    main()
