#!/usr/bin/env python
"""Explore the optimal-k table a smart NI would carry (§4.3.1, §5.1).

Prints, for a 64-host system, the (m breakpoint -> k) runs for several
multicast set sizes, the total table footprint versus a dense n x m
table, and the predicted step counts behind one concrete choice.

Run:  python examples/optimal_k_explorer.py
"""

from __future__ import annotations

from repro import OptimalKTable, min_k_binomial, optimal_k, predicted_steps
from repro.analysis import render_table


def main() -> None:
    table = OptimalKTable(n_max=64, m_max=32)

    rows = []
    for n in (8, 16, 32, 48, 64):
        runs = " ".join(f"m>={m}:k={k}" for m, k in table.runs_for(n))
        rows.append([n, runs])
    print(render_table(["n", "optimal-k runs"], rows, title="Optimal-k breakpoints (n up to 64, m up to 32)"))

    print(
        f"\ntable footprint: {table.memory_entries} entries "
        f"(dense table would need {table.dense_entries})"
    )

    n, m = 64, 8
    print(f"\nwhy k={optimal_k(n, m)} for n={n}, m={m}:")
    detail = [
        [k, predicted_steps(n, k, 1), predicted_steps(n, k, m)]
        for k in range(1, min_k_binomial(n) + 1)
    ]
    print(render_table(["k", "T1 steps (m=1)", f"total steps (m={m})"], detail))


if __name__ == "__main__":
    main()
