#!/usr/bin/env python
"""Scenario: the collective phase of an SPMD iteration (future work, §7).

An iterative SPMD solver on the 64-node cluster alternates:

1. the master *broadcasts* updated parameters (multicast to all),
2. the master *scatters* per-worker input blocks (personalized),
3. workers *gather* partial results back to the master,
4. four independent subgroups each run their own *multicast*
   concurrently (multiple multicast).

All four collectives run over FPFS smart NIs on the same fabric; this
is the "other collective operations" direction the paper's conclusion
points at, built from the multicast machinery.

Run:  python examples/spmd_collectives.py
"""

from __future__ import annotations

from repro import (
    MulticastSimulator,
    UpDownRouter,
    build_irregular_network,
    build_kbinomial_tree,
    cco_ordering,
    chain_for,
    optimal_k,
)
from repro.analysis import render_table
from repro.mcast import broadcast, gather, multiple_multicast, scatter


def main() -> None:
    topology = build_irregular_network(seed=12)
    router = UpDownRouter(topology)
    ordering = cco_ordering(topology, router)
    simulator = MulticastSimulator(topology, router)
    master = ordering[0]
    workers = [h for h in ordering if h != master]

    rows = []

    # 1. Parameter broadcast: 512 bytes to all 63 workers.
    m = simulator.params.packets_for(512)
    b = broadcast(simulator, master, ordering, m)
    rows.append(["broadcast 512B -> 63 workers", round(b.latency, 1)])

    # 2. Scatter: 256 bytes of private input per worker, relayed over
    #    the multicast tree vs sent directly.
    chain = chain_for(master, workers, ordering)
    tree = build_kbinomial_tree(chain, optimal_k(len(chain), m))
    mp = simulator.params.packets_for(256)
    s_tree = scatter(simulator, tree, mp, strategy="tree")
    s_direct = scatter(simulator, tree, mp, strategy="direct")
    rows.append(["scatter 256B/worker (tree relay)", round(s_tree.makespan, 1)])
    rows.append(["scatter 256B/worker (direct)", round(s_direct.makespan, 1)])

    # 3. Gather: 128 bytes of partial results per worker.
    g = gather(simulator, master, workers[:32], simulator.params.packets_for(128))
    rows.append(["gather 128B x 32 workers", round(g.makespan, 1)])

    # 4. Four disjoint 15-way subgroup multicasts, concurrently.
    groups = [(ordering[i * 16], ordering[i * 16 + 1 : (i + 1) * 16]) for i in range(4)]
    mm = multiple_multicast(simulator, groups, ordering, m)
    rows.append(["4 concurrent 15-way multicasts (makespan)", round(mm.makespan, 1)])

    print(render_table(["collective", "latency (us)"], rows, title="SPMD collective phase on 64 nodes (FPFS NIs)"))


if __name__ == "__main__":
    main()
