#!/usr/bin/env python
"""Scenario: an ad-hoc design-space sweep with the generic sweep utility.

Question a system architect might ask: *how sensitive is the k-binomial
advantage to NI send overhead?*  Faster NIs shrink the per-step cost
and with it the absolute win; this sweep varies ``t_ns`` and the
message length over a fixed 31-destination multicast and tabulates the
binomial/k-binomial latency ratio at each grid point.

Run:  python examples/parameter_study.py
"""

from __future__ import annotations

import random

from repro import (
    MulticastSimulator,
    PAPER_PARAMS,
    UpDownRouter,
    build_binomial_tree,
    build_irregular_network,
    build_kbinomial_tree,
    cco_ordering,
    chain_for,
    optimal_k,
)
from repro.analysis import render_table, sweep, sweep_table


def main() -> None:
    topology = build_irregular_network(seed=4)
    router = UpDownRouter(topology)
    ordering = cco_ordering(topology, router)
    rng = random.Random(17)
    picked = rng.sample(list(topology.hosts), 32)
    chain = chain_for(picked[0], picked[1:], ordering)
    n = len(chain)

    def ratio(t_ns: float, m: int) -> float:
        params = PAPER_PARAMS.with_(t_ns=t_ns)
        simulator = MulticastSimulator(topology, router, params=params)
        kbin = simulator.run(build_kbinomial_tree(chain, optimal_k(n, m)), m).latency
        bino = simulator.run(build_binomial_tree(chain), m).latency
        return round(bino / kbin, 2)

    points = sweep(ratio, {"t_ns": [1.0, 3.0, 6.0], "m": [2, 8, 32]})
    headers, rows = sweep_table(points, value_name="binomial/kbinomial")
    print(
        render_table(
            headers,
            rows,
            title=f"k-binomial advantage vs NI send overhead ({n - 1} destinations)",
        )
    )
    print(
        "\nThe ratio is driven by the pipeline-step count, so it holds up\n"
        "across NI speeds; absolute latencies (not shown) scale with t_ns."
    )


if __name__ == "__main__":
    main()
