#!/usr/bin/env python
"""Scenario: an ad-hoc design-space sweep on the parallel sweep engine.

Question a system architect might ask: *how sensitive is the k-binomial
advantage to NI send overhead?*  Faster NIs shrink the per-step cost
and with it the absolute win; this sweep varies ``t_ns`` and the
message length over a fixed 31-destination multicast and tabulates the
binomial/k-binomial latency ratio at each grid point.

The measure is a module-level (picklable) function, so ``--workers N``
fans the grid out over processes — each worker rebuilds the testbed
once (memoized) and keeps its tree caches warm across points — and
``--store FILE`` makes re-runs incremental: points already in the JSON
store are never simulated again.

Run:  python examples/parameter_study.py [--workers 4] [--store study.json]
"""

from __future__ import annotations

import argparse
import random
from functools import lru_cache

from repro import (
    MulticastSimulator,
    PAPER_PARAMS,
    UpDownRouter,
    build_binomial_tree,
    build_irregular_network,
    cco_ordering,
    chain_for,
    optimal_k,
)
from repro.analysis import render_table, run_sweep, sweep_table
from repro.core import cached_build_kbinomial_tree


@lru_cache(maxsize=1)
def _testbed():
    """The study's fixed testbed — built once per process, then shared."""
    topology = build_irregular_network(seed=4)
    router = UpDownRouter(topology)
    ordering = cco_ordering(topology, router)
    rng = random.Random(17)
    picked = rng.sample(list(topology.hosts), 32)
    chain = tuple(chain_for(picked[0], picked[1:], ordering))
    return topology, router, chain


def ratio(t_ns: float, m: int) -> float:
    """binomial/k-binomial latency ratio at one (t_ns, m) grid point."""
    topology, router, chain = _testbed()
    params = PAPER_PARAMS.with_(t_ns=t_ns)
    simulator = MulticastSimulator(topology, router, params=params)
    n = len(chain)
    kbin = simulator.run(cached_build_kbinomial_tree(chain, optimal_k(n, m)), m).latency
    bino = simulator.run(build_binomial_tree(chain), m).latency
    return round(bino / kbin, 2)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=1, help="sweep processes")
    parser.add_argument("--store", default=None, help="JSON result store (incremental re-runs)")
    args = parser.parse_args()

    points = run_sweep(
        ratio,
        {"t_ns": [1.0, 3.0, 6.0], "m": [2, 8, 32]},
        workers=args.workers,
        store=args.store,
    )
    headers, rows = sweep_table(points, value_name="binomial/kbinomial")
    n = len(_testbed()[2])
    print(
        render_table(
            headers,
            rows,
            title=f"k-binomial advantage vs NI send overhead ({n - 1} destinations)",
        )
    )
    print(
        "\nThe ratio is driven by the pipeline-step count, so it holds up\n"
        "across NI speeds; absolute latencies (not shown) scale with t_ns."
    )


if __name__ == "__main__":
    main()
