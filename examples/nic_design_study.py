#!/usr/bin/env python
"""Scenario: choosing the NI forwarding discipline (§2-§3 design study).

A NIC designer must pick between host-level forwarding (conventional),
FCFS, and FPFS coprocessor forwarding.  This script measures, on the
same 64-host network and multicast workload:

* end-to-end multicast latency under all three disciplines, and
* the peak per-NI forwarding buffer each needs,

as the message length grows — reproducing the §3.3 argument that FPFS
dominates FCFS in buffer demand while also being at least as fast, and
quantifying the cost of not having smart NI support at all.

Run:  python examples/nic_design_study.py
"""

from __future__ import annotations

import random

from repro import (
    ConventionalInterface,
    FCFSInterface,
    FPFSInterface,
    MulticastSimulator,
    UpDownRouter,
    build_irregular_network,
    build_kbinomial_tree,
    cco_ordering,
    chain_for,
    optimal_k,
)
from repro.analysis import render_table
from repro.core import compare_buffers


def main() -> None:
    topology = build_irregular_network(seed=5)
    router = UpDownRouter(topology)
    ordering = cco_ordering(topology, router)
    rng = random.Random(23)
    picked = rng.sample(list(topology.hosts), 32)
    chain = chain_for(picked[0], picked[1:], ordering)
    n = len(chain)

    rows = []
    for m in (1, 4, 16, 32):
        tree = build_kbinomial_tree(chain, optimal_k(n, m))
        row = [m]
        for ni in (ConventionalInterface, FCFSInterface, FPFSInterface):
            result = MulticastSimulator(topology, router, ni_class=ni).run(tree, m)
            row.extend([round(result.latency, 1), result.max_intermediate_buffer])
        rows.append(row)

    print(
        render_table(
            ["pkts", "conv us", "buf", "FCFS us", "buf", "FPFS us", "buf"],
            rows,
            title="NI discipline study: latency and peak intermediate NI buffer (packets)",
        )
    )

    print("\nAnalytic §3.3.2 residency (children=3), in units of t_sq:")
    analytic = [
        [p, compare_buffers(3, p).fcfs, compare_buffers(3, p).fpfs]
        for p in (1, 4, 16, 32)
    ]
    print(render_table(["pkts", "FCFS residency", "FPFS residency"], analytic))


if __name__ == "__main__":
    main()
