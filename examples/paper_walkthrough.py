#!/usr/bin/env python
"""A guided tour of the paper's worked examples, reproduced live.

Walks through §2.6 (Fig. 5), §4.1 (Fig. 8), §4.2 (Fig. 9) and
§4.3.1 (Theorem 3) with rendered trees and step schedules, printing
the paper's numbers next to the library's — a self-checking tutorial.

Run:  python examples/paper_walkthrough.py
"""

from __future__ import annotations

from repro import (
    build_binomial_tree,
    build_kbinomial_tree,
    build_linear_tree,
    coverage,
    fpfs_total_steps,
    min_k_binomial,
    optimal_k,
    packet_completion_steps,
    predicted_steps,
)
from repro.analysis import render_table
from repro.core import render_tree


def section(title: str) -> None:
    print()
    print("=" * 70)
    print(title)
    print("=" * 70)


def main() -> None:
    section("§2.6 / Fig. 5 — the binomial tree is NOT optimal under packetization")
    chain4 = list(range(4))
    binomial = build_binomial_tree(chain4)
    linear = build_linear_tree(chain4)
    print("binomial tree (3 destinations):")
    print(render_tree(binomial))
    print(f"\n3-packet multicast: {fpfs_total_steps(binomial, 3)} steps (paper: 6)")
    print("\nlinear tree:")
    print(render_tree(linear))
    print(f"\n3-packet multicast: {fpfs_total_steps(linear, 3)} steps (paper: 5)")

    section("§4.1 / Fig. 8 — pipelined single-packet multicasts (Theorems 1-2)")
    tree8 = build_binomial_tree(list(range(8)))
    print("binomial tree over 7 destinations:")
    print(render_tree(tree8))
    completions = packet_completion_steps(tree8, 3)
    print(f"\npacket completion steps: {completions} (paper: 3, 6, 9)")
    print(f"lag between packets = root fan-out k_T = {tree8.root_fanout} (Theorem 1)")

    section("§4.2 / Fig. 9 — k-binomial trees on 16 nodes")
    for k in (3, 4):
        tree = build_kbinomial_tree(list(range(16)), k)
        steps = max(tree.first_packet_steps().values())
        print(f"\n{k}-binomial tree, first packet in {steps} steps "
              f"(T1(16,{k}) budget: {('5' if k == 3 else '4')}):")
        print(render_tree(tree))

    section("§4.2 / Lemma 1 — coverage N(s, k)")
    rows = [[s] + [coverage(s, k) for k in range(1, 5)] for s in range(9)]
    print(render_table(["s", "k=1", "k=2", "k=3", "k=4"], rows))
    print("\n(k=2 column: 1, 2, 4, 7, 12, 20, 33, 54, 88 — the paper's sequence)")

    section("§4.3.1 / Theorem 3 — choosing k for n=64, m=8")
    rows = [
        [k, predicted_steps(64, k, 1), predicted_steps(64, k, 8)]
        for k in range(1, min_k_binomial(64) + 1)
    ]
    print(render_table(["k", "steps (m=1)", "steps (m=8)"], rows))
    print(f"\noptimal k: {optimal_k(64, 8)} "
          "(minimum of the m=8 column — 22 steps vs the binomial's 48)")


if __name__ == "__main__":
    main()
