#!/usr/bin/env python
"""Scenario: data distribution on a NOW-style irregular cluster.

A parallel application on a 64-node workstation cluster broadcasts
parameter blocks of different sizes to worker subsets of different
sizes.  For each (workers, message size) pair this script selects the
optimal k-binomial tree, simulates it against the binomial and linear
baselines, and reports where each tree wins — the crossover structure
that motivates Theorem 3.

Run:  python examples/irregular_cluster_multicast.py
"""

from __future__ import annotations

import random

from repro import (
    MulticastSimulator,
    UpDownRouter,
    build_binomial_tree,
    build_irregular_network,
    build_kbinomial_tree,
    build_linear_tree,
    cco_ordering,
    chain_for,
    optimal_k,
)
from repro.analysis import render_table


def main() -> None:
    topology = build_irregular_network(seed=3)
    router = UpDownRouter(topology)
    ordering = cco_ordering(topology, router)
    simulator = MulticastSimulator(topology, router)
    rng = random.Random(11)

    rows = []
    for workers in (8, 24, 48, 63):
        for message_bytes in (64, 512, 2048):
            m = simulator.params.packets_for(message_bytes)
            picked = rng.sample(list(topology.hosts), workers + 1)
            chain = chain_for(picked[0], picked[1:], ordering)
            n = len(chain)
            k = optimal_k(n, m)

            kbin = simulator.run(build_kbinomial_tree(chain, k), m).latency
            bino = simulator.run(build_binomial_tree(chain), m).latency
            line = simulator.run(build_linear_tree(chain), m).latency
            best = min(("k-binomial", kbin), ("binomial", bino), ("linear", line), key=lambda t: t[1])
            rows.append(
                [workers, message_bytes, m, k, round(kbin, 1), round(bino, 1), round(line, 1), best[0]]
            )

    print(
        render_table(
            ["workers", "bytes", "pkts", "opt k", "k-binomial us", "binomial us", "linear us", "winner"],
            rows,
            title="Parameter distribution on a 64-node irregular cluster",
        )
    )
    print(
        "\nNote how the optimal k (and the winning tree) shifts from the\n"
        "binomial shape on short messages toward low-fan-out pipelines as\n"
        "the packet count grows — the central observation of the paper."
    )


if __name__ == "__main__":
    main()
