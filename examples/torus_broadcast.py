#!/usr/bin/env python
"""Scenario: MPI-style broadcast on a k-ary n-cube (§4.3.2's setting).

On regular networks a *dimension-ordered chain* is a contention-free
ordering, so Fig. 11's construction yields depth contention-free
k-binomial trees.  This script broadcasts over an 8x8 torus, verifies
contention-freedom explicitly with the depth-contention checker, and
shows the latency effect of choosing k by Theorem 3 versus the binomial
default for several message lengths.

Run:  python examples/torus_broadcast.py
"""

from __future__ import annotations

from repro import (
    EcubeRouter,
    KAryNCube,
    MulticastSimulator,
    build_binomial_tree,
    build_kbinomial_tree,
    depth_contention,
    dimension_ordered_chain,
    optimal_k,
)
from repro.analysis import render_table


def main() -> None:
    cube = KAryNCube(8, 2)  # 64 processors
    router = EcubeRouter(cube)
    chain = dimension_ordered_chain(cube)  # root = processor (0, 0)
    simulator = MulticastSimulator(cube, router)
    n = len(chain)

    rows = []
    for message_bytes in (64, 256, 1024, 4096):
        m = simulator.params.packets_for(message_bytes)
        k = optimal_k(n, m)
        ktree = build_kbinomial_tree(chain, k)
        btree = build_binomial_tree(chain)

        kreport = depth_contention(ktree, router)
        assert kreport.is_contention_free, "Fig. 11 construction must be contention-free here"

        klat = simulator.run(ktree, m).latency
        blat = simulator.run(btree, m).latency
        rows.append(
            [message_bytes, m, k, round(klat, 1), round(blat, 1), round(blat / klat, 2)]
        )

    print(
        render_table(
            ["bytes", "pkts", "opt k", "k-binomial us", "binomial us", "speedup"],
            rows,
            title="Broadcast on an 8x8 torus (dimension-ordered chain, e-cube routing)",
        )
    )
    print("\nAll k-binomial trees verified depth contention-free on the torus.")


if __name__ == "__main__":
    main()
