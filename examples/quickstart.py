#!/usr/bin/env python
"""Quickstart: multicast a packetized message on the paper's testbed.

Builds the 64-host irregular network, picks 15 random destinations,
constructs the optimal k-binomial tree (Theorem 3), and simulates the
multicast end to end with FPFS smart network interfaces — then compares
against the conventional binomial tree.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import random

from repro import (
    MulticastSimulator,
    UpDownRouter,
    build_binomial_tree,
    build_irregular_network,
    build_kbinomial_tree,
    cco_ordering,
    chain_for,
    optimal_k,
)


def main() -> None:
    # 1. The network: 64 hosts on 16 eight-port switches, up*/down* routing.
    topology = build_irregular_network(seed=0)
    router = UpDownRouter(topology)

    # 2. A contention-minimizing base ordering of all hosts (CCO).
    ordering = cco_ordering(topology, router)

    # 3. One multicast: a random source and 15 random destinations.
    rng = random.Random(7)
    picked = rng.sample(list(topology.hosts), 16)
    source, destinations = picked[0], picked[1:]
    chain = chain_for(source, destinations, ordering)

    # 4. A 512-byte message = 8 packets of 64 bytes.
    simulator = MulticastSimulator(topology, router)
    m = simulator.params.packets_for(512)
    n = len(chain)

    # 5. Theorem 3: the optimal fan-out for (n, m).
    k = optimal_k(n, m)
    print(f"multicast set n={n}, packets m={m}  ->  optimal k = {k}")

    # 6. Simulate both trees.
    kbin = simulator.run(build_kbinomial_tree(chain, k), m)
    bino = simulator.run(build_binomial_tree(chain), m)

    print(f"k-binomial tree latency : {kbin.latency:8.1f} us")
    print(f"binomial tree latency   : {bino.latency:8.1f} us")
    print(f"improvement             : {bino.latency / kbin.latency:8.2f} x")
    print(f"peak NI forward buffer  : {kbin.max_intermediate_buffer} packets (k-binomial)")


if __name__ == "__main__":
    main()
